package sniffer

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Property: the capture format round-trips everything the instrument
// records — for arbitrary observations within the format's field ranges,
// including MPDU/Meta counts far past the one-byte v1 fields.
func TestTraceRoundTripProperty(t *testing.T) {
	types := []phy.FrameType{phy.FrameData, phy.FrameBeacon, phy.FrameDiscovery, phy.FrameRTS, phy.FrameCTS}
	prop := func(start, dur uint32, src uint16, meta, mpdus uint32, pw int16, tsel uint8, retry, collided bool) bool {
		in := Observation{
			Start:    sim.Time(start),
			End:      sim.Time(start) + sim.Time(dur),
			PowerDBm: float64(pw) / 100,
			Type:     types[int(tsel)%len(types)],
			Src:      int(src),
			Meta:     int(meta % (1 << 24)),
			MPDUs:    int(mpdus % (1 << 24)),
			Retry:    retry,
			Collided: collided,
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, []Observation{in}); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		out, err := ReadTrace(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if len(out) != 1 {
			return false
		}
		o := out[0]
		return o.Start == in.Start && o.End == in.End &&
			o.PowerDBm == in.PowerDBm &&
			o.Type == in.Type && o.Src == in.Src &&
			o.Meta == in.Meta && o.MPDUs == in.MPDUs &&
			o.Retry == in.Retry && o.Collided == in.Collided &&
			math.Abs(o.AmplitudeV-AmplitudeFromPower(in.PowerDBm)) < 1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a truncated v2 capture recovers exactly a prefix of its
// records — never garbage, never extra records, and the reader flags the
// truncation. Cuts inside the header still error.
func TestTraceTruncationProperty(t *testing.T) {
	obs := []Observation{
		{Start: 1000, End: 2000, PowerDBm: -55, Type: phy.FrameData, Src: 3, MPDUs: 4},
		{Start: 3000, End: 3500, PowerDBm: -60, Type: phy.FrameBeacon, Src: 4},
		{Start: 4000, End: 4700, PowerDBm: -48, Type: phy.FrameData, Src: 3, MPDUs: 900},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, obs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	sameObs := func(a, b Observation) bool {
		return a.Start == b.Start && a.End == b.End && a.PowerDBm == b.PowerDBm &&
			a.Type == b.Type && a.Src == b.Src && a.Meta == b.Meta && a.MPDUs == b.MPDUs &&
			a.Retry == b.Retry && a.Collided == b.Collided
	}
	for cut := 0; cut < len(full); cut++ {
		got, err := ReadTrace(bytes.NewReader(full[:cut]))
		if cut < 16 {
			if err == nil {
				t.Fatalf("cut %d inside the header parsed without error", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut at byte %d of %d errored instead of recovering: %v", cut, len(full), err)
		}
		if len(got) > len(obs) {
			t.Fatalf("cut %d recovered %d records from a %d-record capture", cut, len(got), len(obs))
		}
		for i := range got {
			if !sameObs(got[i], obs[i]) {
				t.Fatalf("cut %d record %d mismatches the original", cut, i)
			}
		}
	}
	if got, err := ReadTrace(bytes.NewReader(full)); err != nil || len(got) != len(obs) {
		t.Fatalf("full file: %v, %d records", err, len(got))
	}
}

// Property: truncation is visible through the streaming reader — a cut
// that removes the footer must set Truncated, the intact file must not.
func TestTraceTruncatedFlag(t *testing.T) {
	obs := []Observation{
		{Start: 10, End: 20, PowerDBm: -50, Type: phy.FrameData, Src: 1},
		{Start: 30, End: 35, PowerDBm: -61, Type: phy.FrameBeacon, Src: 2},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, obs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	drain := func(raw []byte) *TraceReader {
		tr, err := NewTraceReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := tr.Next(); err != nil {
				return tr
			}
		}
	}
	if tr := drain(full); tr.Truncated() || tr.Records() != 2 {
		t.Errorf("intact file: truncated=%v records=%d", tr.Truncated(), tr.Records())
	}
	if tr := drain(full[:len(full)-3]); !tr.Truncated() || tr.Records() != 2 {
		t.Errorf("footer cut: truncated=%v records=%d", tr.Truncated(), tr.Records())
	}
	if tr := drain(full[:len(full)-25]); !tr.Truncated() || tr.Records() != 1 {
		t.Errorf("record cut: truncated=%v records=%d", tr.Truncated(), tr.Records())
	}
	// A crash against a preallocated file leaves a zero tail, not a
	// clean cut. The zero length byte looks like a footer sentinel; its
	// unverifiable checksum must read as truncation, not corruption.
	zeros := append(append([]byte(nil), full[:len(full)-21]...), make([]byte, 64)...)
	if tr := drain(zeros); !tr.Truncated() || tr.Records() != 2 {
		t.Errorf("zero tail: truncated=%v records=%d", tr.Truncated(), tr.Records())
	}
}

// v1GoldenHex is a v1 capture of sampleObs() written before the v2
// migration. The legacy format must stay byte-stable and readable.
const v1GoldenHex = "4942555601000000030000000000000060ad010000000100ffff0000000000000000000000000700f4832380a08601000000000048e801000000000000000000004045c00300000060ad010200000000ffff000000000000000000000000000040b333ef400d030000000000f0430300000000000000000000a049c00000000060ad010300000200ffff000000000000000000000000001fb031a6b2e093040000000000d0e90400000000000000000000004ec000000000"

// TestTraceV1Compat: the v1 writer still produces the golden bytes and
// both readers (slice and streaming) still parse them losslessly. Every
// strict v1 guarantee is preserved: truncation of a v1 file is an error,
// not a recovery.
func TestTraceV1Compat(t *testing.T) {
	golden, err := hex.DecodeString(v1GoldenHex)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeTraceV1(&buf, sampleObs()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("v1 writer no longer byte-identical:\n got %x\nwant %x", buf.Bytes(), golden)
	}
	out, err := ReadTrace(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	in := sampleObs()
	if len(out) != len(in) {
		t.Fatalf("records = %d", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Type != b.Type || a.Src != b.Src || a.Meta != b.Meta || a.MPDUs != b.MPDUs ||
			a.Start != b.Start || a.End != b.End || a.PowerDBm != b.PowerDBm ||
			a.Retry != b.Retry || a.Collided != b.Collided {
			t.Errorf("record %d mismatch:\n in %+v\nout %+v", i, a, b)
		}
	}
	tr, err := NewTraceReader(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 1 {
		t.Errorf("version = %d", tr.Version())
	}
	// Strict v1 truncation: every cut of the record region errors.
	for cut := 16; cut < len(golden); cut++ {
		if _, err := ReadTrace(bytes.NewReader(golden[:cut])); err == nil {
			t.Fatalf("truncated v1 file accepted at byte %d", cut)
		}
	}
}
