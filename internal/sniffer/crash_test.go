package sniffer

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vfs/crashtest"
)

func testObs(i int) Observation {
	return Observation{
		Type:     3,
		Src:      i % 4,
		MPDUs:    1 + i%7,
		Meta:     i % 3,
		Start:    sim.Time(1000 * i),
		End:      sim.Time(1000*i + 500),
		PowerDBm: -40 - float64(i%20),
		Retry:    i%5 == 0,
	}
}

// TestTraceWriterCrashEnumeration runs a capture through every power-cut
// image: whatever survives must parse as a valid prefix of the written
// observations — never corruption — and every record synced before the
// cut must be present when the image carries the file at all.
func TestTraceWriterCrashEnumeration(t *testing.T) {
	const nObs = 17
	const syncEvery = 4
	// syncMarks[k] = journal length right after the k-th durability point;
	// syncedAt(op) = records guaranteed on disk at that cut.
	type mark struct{ op, records int }
	var marks []mark

	workload := func(m *vfs.MemFS) error {
		f, err := m.Create("cap.vubiq")
		if err != nil {
			return err
		}
		if err := m.SyncDir("."); err != nil {
			return err
		}
		tw, err := NewTraceWriter(f)
		if err != nil {
			return err
		}
		for i := 0; i < nObs; i++ {
			if err := tw.Write(testObs(i)); err != nil {
				return err
			}
			if (i+1)%syncEvery == 0 {
				if err := tw.Sync(); err != nil {
					return err
				}
				marks = append(marks, mark{op: m.OpCount(), records: i + 1})
			}
		}
		if err := tw.Close(); err != nil {
			return err
		}
		if err := tw.Sync(); err != nil {
			return err
		}
		marks = append(marks, mark{op: m.OpCount(), records: nObs})
		return f.Close()
	}

	verify := func(p crashtest.Point) error {
		syncedRecords := 0
		for _, mk := range marks {
			if mk.op <= p.Index {
				syncedRecords = mk.records
			}
		}
		data, ok := p.Image.Files["cap.vubiq"]
		if !ok {
			// The name itself can only be missing before the SyncDir; with
			// records synced the file must be reachable.
			if syncedRecords > 0 {
				return fmt.Errorf("file missing with %d records synced", syncedRecords)
			}
			return nil
		}
		if len(data) < 16 {
			if syncedRecords > 0 {
				return fmt.Errorf("header gone with %d records synced", syncedRecords)
			}
			return nil
		}
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			if syncedRecords > 0 {
				return fmt.Errorf("unreadable header with %d records synced: %w", syncedRecords, err)
			}
			return nil
		}
		got := 0
		for {
			o, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("record %d: %w (crash images must salvage, never corrupt)", got, err)
			}
			want := testObs(got)
			if o.Src != want.Src || o.MPDUs != want.MPDUs || o.Start != want.Start || o.PowerDBm != want.PowerDBm {
				return fmt.Errorf("record %d is not the record that was written", got)
			}
			got++
		}
		if got < syncedRecords {
			return fmt.Errorf("salvaged %d records, %d were synced", got, syncedRecords)
		}
		if got > nObs {
			return fmt.Errorf("salvaged %d records from a %d-record capture", got, nObs)
		}
		// The final cut's synced image is the complete capture.
		if p.Index == p.Total && got != nObs {
			return fmt.Errorf("uncut capture salvaged %d/%d", got, nObs)
		}
		return nil
	}

	n, err := crashtest.Enumerate(nil, workload, verify)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d crash images", n)
}

// TestTraceWriterFaultInjection streams a capture through FaultFS: the
// first disk fault seals the stream, and whatever landed before it is a
// salvageable prefix.
func TestTraceWriterFaultInjection(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		mem := vfs.NewMemFS()
		ffs := vfs.NewFaultFS(mem, vfs.FaultSpec{Seed: seed, ENOSPCAfter: 600, PTornWrite: 0.1})
		f, err := ffs.Create("cap")
		if err != nil {
			continue
		}
		tw, err := NewTraceWriter(f)
		if err != nil {
			continue
		}
		written := 0
		for i := 0; i < 60; i++ {
			if err := tw.Write(testObs(i)); err != nil {
				break
			}
			if err := tw.Sync(); err != nil {
				break
			}
			written++
		}
		tw.Close()
		f.Close()
		data, _ := mem.ReadFileAt("cap")
		if len(data) < 16 {
			continue
		}
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: header unreadable after %d synced writes: %v", seed, written, err)
		}
		got := 0
		for {
			_, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("seed %d: record %d: %v", seed, got, err)
			}
			got++
		}
		if got < written {
			t.Fatalf("seed %d: salvaged %d records, %d were synced", seed, got, written)
		}
	}
}
