package sniffer

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/sim"
)

// synthObs derives a deterministic observation from an index, exercising
// varint widths from one byte up through multi-byte counts.
func synthObs(i int) Observation {
	start := sim.Time(i) * 40 * time.Microsecond
	o := Observation{
		Start:    start,
		End:      start + sim.Time(5+i%23)*time.Microsecond,
		PowerDBm: -40 - float64(i%37)/2,
		Type:     phy.FrameType(i % 6),
		Src:      i % 5,
		Meta:     i % 300,
		MPDUs:    1 + i%700,
		Retry:    i%7 == 0,
		Collided: i%11 == 0,
	}
	o.AmplitudeV = AmplitudeFromPower(o.PowerDBm)
	return o
}

func TestTraceStreamIncremental(t *testing.T) {
	const n = 5000
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(synthObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	st := tw.Stats()
	if st.Records != n || st.Drops != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != uint64(buf.Len()) {
		t.Fatalf("stats.Bytes = %d, file is %d", st.Bytes, buf.Len())
	}
	// Close is idempotent; writes after Close fail.
	if err := tw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := tw.Write(synthObs(0)); err == nil {
		t.Fatal("write after Close accepted")
	}

	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 2 {
		t.Fatalf("version = %d", tr.Version())
	}
	for i := 0; i < n; i++ {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := synthObs(i)
		if got != want {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("after last record: %v", err)
	}
	if tr.Truncated() || tr.Records() != n {
		t.Fatalf("truncated=%v records=%d", tr.Truncated(), tr.Records())
	}
}

func TestTraceWriterDropCounter(t *testing.T) {
	tw, err := NewTraceWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	bad := Observation{Start: 10, End: 5, PowerDBm: -50}
	if err := tw.Write(bad); err == nil {
		t.Fatal("invalid observation accepted")
	}
	if err := tw.Write(synthObs(1)); err != nil {
		t.Fatal(err)
	}
	if st := tw.Stats(); st.Drops != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTraceEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("Next on empty capture: %v", err)
	}
	if tr.Truncated() {
		t.Fatal("intact empty capture flagged truncated")
	}
}

// TestTraceStreamMillion: the acceptance-scale capture — a million
// observations stream write→read without ever materializing a slice.
func TestTraceStreamMillion(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 50_000
	}
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(synthObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		o, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", count, err)
		}
		if count%99991 == 0 && o != synthObs(count) {
			t.Fatalf("record %d mismatch", count)
		}
		count++
	}
	if count != n || tr.Truncated() {
		t.Fatalf("read %d of %d records, truncated=%v", count, n, tr.Truncated())
	}
}

// TestSnifferSinkStreaming: observations flow to the sink at capture
// time; SinkOnly keeps Obs empty, and a TraceWriter sink produces a
// loadable capture.
func TestSnifferSinkStreaming(t *testing.T) {
	s, med := testMedium(91)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	sn.Sink = Tee(tw, SinkFunc(func(Observation) error { seen++; return nil }))
	sn.SinkOnly = true
	const frames = 50
	for i := 0; i < frames; i++ {
		at := sim.Time(i) * 50 * time.Microsecond
		s.At(at, func() {
			med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1500})
		})
	}
	s.Run(5 * time.Millisecond)
	if len(sn.Obs) != 0 {
		t.Fatalf("SinkOnly accumulated %d observations", len(sn.Obs))
	}
	if seen != frames || sn.Stats.Captured != frames || sn.Stats.SinkDrops != 0 {
		t.Fatalf("seen=%d stats=%+v", seen, sn.Stats)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil || len(out) != frames {
		t.Fatalf("capture: %v, %d records", err, len(out))
	}
}

// TestSnifferRetainWindow: a bounded Retain keeps memory flat while the
// recent excerpt stays available to Window/Envelope.
func TestSnifferRetainWindow(t *testing.T) {
	s, med := testMedium(92)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	sn.Retain = time.Millisecond
	const frames = 2000
	for i := 0; i < frames; i++ {
		at := sim.Time(i) * 50 * time.Microsecond
		s.At(at, func() {
			med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1500})
		})
	}
	s.Run(frames * 50 * time.Microsecond)
	if sn.Stats.Captured != frames {
		t.Fatalf("captured %d of %d", sn.Stats.Captured, frames)
	}
	// 1 ms at 50 µs spacing ≈ 20 live frames; pruning is amortized so
	// allow slack, but the full history must be long gone.
	if len(sn.Obs) > 100 {
		t.Fatalf("retained %d observations, want a bounded window", len(sn.Obs))
	}
	now := s.Now()
	if w := sn.Window(now-500*time.Microsecond, now); len(w) == 0 {
		t.Fatal("recent window empty despite retention")
	}
}

func TestSnifferSinkErrorCounted(t *testing.T) {
	s, med := testMedium(93)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	sn.Sink = SinkFunc(func(Observation) error { return io.ErrClosedPipe })
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1500})
	s.Run(time.Millisecond)
	if sn.Stats.SinkDrops != 1 || sn.SinkErr != io.ErrClosedPipe {
		t.Fatalf("drops=%d err=%v", sn.Stats.SinkDrops, sn.SinkErr)
	}
	if len(sn.Obs) != 1 {
		t.Fatalf("sink error must not lose the in-memory copy: %d obs", len(sn.Obs))
	}
}

// BenchmarkTraceWriter pins the O(1) claim: allocations per record must
// stay flat (zero steady-state) regardless of capture length.
func BenchmarkTraceWriter(b *testing.B) {
	tw, err := NewTraceWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	obs := synthObs(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tw.Write(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceReader(b *testing.B) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf)
	const n = 100_000
	for i := 0; i < n; i++ {
		if err := tw.Write(synthObs(i)); err != nil {
			b.Fatal(err)
		}
	}
	tw.Close()
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	tr, _ := NewTraceReader(bytes.NewReader(raw))
	for i := 0; i < b.N; i++ {
		if _, err := tr.Next(); err == io.EOF {
			b.StopTimer()
			tr, _ = NewTraceReader(bytes.NewReader(raw))
			b.StartTimer()
		} else if err != nil {
			b.Fatal(err)
		}
	}
}
