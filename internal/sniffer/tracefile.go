package sniffer

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/phy"
)

// Trace-file formats. Version 1 (legacy) is a 16-byte header carrying
// the record count followed by fixed-size records: a serialized PPDU
// header (the phy codec) plus a 28-byte capture annex. Version 2 is the
// streaming format documented in stream.go. WriteTrace and ReadTrace
// are compatibility wrappers over the streaming TraceWriter/TraceReader:
// writes emit v2, reads accept both versions.

// traceMagic identifies a capture file.
const traceMagic = 0x56554249 // "VUBI"

// traceVersion is the legacy whole-slice format version.
const traceVersion = 1

// annexSize is the v1 capture annex length: start (8) + end (8) +
// power (8) + flags (1) + reserved (3).
const annexSize = 28

// v1 annex flag bits.
const (
	annexRetry    = 1 << 0
	annexCollided = 1 << 1
)

// ErrBadTraceFile reports a malformed capture file.
var ErrBadTraceFile = errors.New("sniffer: malformed trace file")

// WriteTrace writes the observations to w as one v2 capture (header,
// records, footer). It is the whole-slice convenience wrapper around
// TraceWriter; long captures should stream through TraceWriter directly.
// Invalid observations (End < Start, negative timestamps, non-finite
// power, negative counts) abort the write with an error instead of being
// silently mangled.
func WriteTrace(w io.Writer, obs []Observation) error {
	tw, err := NewTraceWriter(w)
	if err != nil {
		return err
	}
	for i, o := range obs {
		if err := tw.Write(o); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return tw.Close()
}

// ReadTrace parses a capture file of either format version into a slice.
// It is the whole-slice convenience wrapper around TraceReader; long
// captures should iterate TraceReader directly. A truncated v2 capture
// yields its recovered valid prefix without error (use TraceReader to
// distinguish); v1 files keep their strict all-or-nothing semantics.
func ReadTrace(r io.Reader) ([]Observation, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	// Preallocate a bounded amount; a corrupt header must cost a parse
	// error, not memory.
	pre := tr.remaining
	if pre > 4096 {
		pre = 4096
	}
	out := make([]Observation, 0, pre)
	for {
		o, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
}

// writeTraceV1 emits the legacy v1 format. It exists so tests can pin
// byte-identical compatibility with captures written before the v2
// migration; new code writes v2. Unlike the historical writer it
// refuses MPDU/Meta values that do not fit the one-byte v1 fields
// instead of clamping them.
func writeTraceV1(w io.Writer, obs []Observation) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(obs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for i, o := range obs {
		if err := checkObservation(o); err != nil {
			return fmt.Errorf("sniffer: record %d: invalid observation: %w", i, err)
		}
		if o.MPDUs > 255 {
			return fmt.Errorf("sniffer: record %d: MPDU count %d exceeds the one-byte v1 field", i, o.MPDUs)
		}
		if o.Meta > 255 {
			return fmt.Errorf("sniffer: record %d: meta %d exceeds the one-byte v1 field", i, o.Meta)
		}
		f := phy.Frame{
			Type:         o.Type,
			Src:          o.Src,
			Dst:          -1, // the instrument does not decode addressing
			MPDUs:        o.MPDUs,
			Meta:         o.Meta,
			PayloadBytes: 0,
		}
		fb, err := phy.MarshalHeader(f)
		if err != nil {
			return fmt.Errorf("sniffer: record header: %w", err)
		}
		if _, err := bw.Write(fb); err != nil {
			return err
		}
		var annex [annexSize]byte
		binary.LittleEndian.PutUint64(annex[0:], uint64(o.Start))
		binary.LittleEndian.PutUint64(annex[8:], uint64(o.End))
		binary.LittleEndian.PutUint64(annex[16:], math.Float64bits(o.PowerDBm))
		if o.Retry {
			annex[24] |= annexRetry
		}
		if o.Collided {
			annex[24] |= annexCollided
		}
		if _, err := bw.Write(annex[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
