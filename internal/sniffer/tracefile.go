package sniffer

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Trace-file format: a 16-byte file header followed by one record per
// observation. Each record is a serialized PPDU header (the phy codec)
// plus a fixed-size capture annex carrying what the instrument adds:
// timing and received power. The format is deliberately append-friendly
// so long captures can stream to disk.

// traceMagic identifies a capture file.
const traceMagic = 0x56554249 // "VUBI"

// traceVersion is bumped on incompatible changes.
const traceVersion = 1

// annexSize is the capture annex length: start (8) + end (8) + power (8)
// + flags (1) + reserved (3).
const annexSize = 28

// annex flag bits.
const (
	annexRetry    = 1 << 0
	annexCollided = 1 << 1
)

// ErrBadTraceFile reports a malformed capture file.
var ErrBadTraceFile = errors.New("sniffer: malformed trace file")

// WriteTrace streams the observations to w in the binary capture format.
func WriteTrace(w io.Writer, obs []Observation) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(obs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, o := range obs {
		f := phy.Frame{
			Type:         o.Type,
			Src:          o.Src,
			Dst:          -1, // the instrument does not decode addressing
			MPDUs:        clampByte(o.MPDUs),
			Meta:         clampByte(o.Meta),
			PayloadBytes: 0,
		}
		fb, err := phy.MarshalHeader(f)
		if err != nil {
			return fmt.Errorf("sniffer: record header: %w", err)
		}
		if _, err := bw.Write(fb); err != nil {
			return err
		}
		var annex [annexSize]byte
		binary.LittleEndian.PutUint64(annex[0:], uint64(o.Start))
		binary.LittleEndian.PutUint64(annex[8:], uint64(o.End))
		binary.LittleEndian.PutUint64(annex[16:], math.Float64bits(o.PowerDBm))
		if o.Retry {
			annex[24] |= annexRetry
		}
		if o.Collided {
			annex[24] |= annexCollided
		}
		if _, err := bw.Write(annex[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a capture file written by WriteTrace.
func ReadTrace(r io.Reader) ([]Observation, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTraceFile)
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadTraceFile)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > 1<<32 {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTraceFile, n)
	}
	// Preallocate from the declared count, but never trust it for more
	// than a bounded up-front allocation: a corrupt count must cost a
	// parse error, not memory.
	pre := n
	if pre > 4096 {
		pre = 4096
	}
	out := make([]Observation, 0, pre)
	fb := make([]byte, phy.HeaderSize)
	var annex [annexSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, fb); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, i, err)
		}
		f, err := phy.UnmarshalHeader(fb)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, i, err)
		}
		if _, err := io.ReadFull(br, annex[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d annex: %v", ErrBadTraceFile, i, err)
		}
		o := Observation{
			Type:     f.Type,
			Src:      f.Src,
			Meta:     f.Meta,
			MPDUs:    f.MPDUs,
			Start:    sim.Time(binary.LittleEndian.Uint64(annex[0:])),
			End:      sim.Time(binary.LittleEndian.Uint64(annex[8:])),
			PowerDBm: math.Float64frombits(binary.LittleEndian.Uint64(annex[16:])),
			Retry:    annex[24]&annexRetry != 0,
			Collided: annex[24]&annexCollided != 0,
		}
		o.AmplitudeV = AmplitudeFromPower(o.PowerDBm)
		out = append(out, o)
	}
	return out, nil
}

func clampByte(v int) int {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
