// Package sniffer models the paper's measurement instrument: a Vubiq
// 60 GHz down-converter with either a 25 dBi horn or an open waveguide,
// feeding an oscilloscope that undersamples the analog envelope
// (Section 3.1). The real setup cannot decode frames — all of the
// paper's trace analyses work from frame timing and amplitude alone —
// so the sniffer records exactly that: per-frame observations with
// received power, start/end time, and collision annotations, plus
// synthesized envelope samples for figure-style inspection.
package sniffer

import (
	"math"
	"sort"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Observation is one overheard frame: what the oscilloscope trace shows
// after the paper's offline Matlab processing (timing + amplitude), with
// ground-truth annotations alongside for validation.
type Observation struct {
	// Start and End bound the frame on air.
	Start, End sim.Time
	// PowerDBm is the received signal power at the sniffer.
	PowerDBm float64
	// AmplitudeV is the envelope amplitude in volts, as the scope
	// displays it (√power with the frontend's fixed conversion gain).
	AmplitudeV float64
	// Type, Src, Meta, MPDUs mirror the frame's ground truth. The
	// analyses in the trace package deliberately avoid these fields
	// except where the paper also had side information (e.g. device
	// positions for separating link directions by amplitude).
	Type  phy.FrameType
	Src   int
	Meta  int
	MPDUs int
	// Retry and Collided annotate loss events (used to validate the
	// Fig. 21 effects, not by the analyses themselves).
	Retry    bool
	Collided bool
}

// Duration returns the frame's air time.
func (o Observation) Duration() sim.Time { return o.End - o.Start }

// referencePowerDBm maps received power to scope volts: -30 dBm ≡ 1 V at
// the ADC after the frontend's conversion gain.
const referencePowerDBm = -30

// AmplitudeFromPower converts dBm to envelope volts.
func AmplitudeFromPower(dbm float64) float64 {
	return math.Pow(10, (dbm-referencePowerDBm)/20)
}

// Sniffer is a receive-only radio that records every frame above its
// sensitivity.
type Sniffer struct {
	radio *sim.Radio
	// Obs accumulates observations in arrival order.
	Obs []Observation
	// SensitivityDBm drops frames weaker than this (the scope's noise
	// floor); default -75 dBm.
	SensitivityDBm float64
	// GainOffsetDB models the adjustable receiver gain; the paper adds
	// +10 dB when measuring the rotated dock's weak patterns (§4.2).
	GainOffsetDB float64
	// Capturing can be toggled to bound memory in long runs.
	Capturing bool
}

// New mounts a sniffer at pos with the given antenna pattern oriented
// towards boresight (radians). Use antenna.MeasurementHorn() for beam
// pattern work or antenna.OpenWaveguide() for protocol analysis.
func New(med *sim.Medium, name string, pos geom.Vec2, pat antenna.Pattern, boresight float64) *Sniffer {
	sn := &Sniffer{SensitivityDBm: -75, Capturing: true}
	sn.radio = med.AddRadio(&sim.Radio{
		Name:           name,
		Pos:            pos,
		ListenFloorDBm: -95,
	})
	sn.SetPattern(pat, boresight)
	sn.radio.Handler = sim.HandlerFunc(sn.onFrame)
	return sn
}

// Radio exposes the underlying radio.
func (s *Sniffer) Radio() *sim.Radio { return s.radio }

// SetPattern re-aims the sniffer (the paper physically rotates the
// Vubiq between measurement positions). A nil pattern selects isotropic
// reception.
func (s *Sniffer) SetPattern(pat antenna.Pattern, boresight float64) {
	if pat == nil {
		pat = antenna.Isotropic{}
	}
	s.radio.RxGain = antenna.Oriented{Pattern: pat, Boresight: boresight}.GainFunc()
}

// Move relocates the sniffer, invalidating only the channel-cache pairs
// that involve its radio — every other link's ray-traced paths survive
// the move (the paper's Fig. 18/19 methodology repositions the Vubiq six
// times through an otherwise static room).
func (s *Sniffer) Move(med *sim.Medium, pos geom.Vec2) {
	s.radio.Pos = pos
	med.InvalidateRadio(s.radio.ID)
}

// Reset clears the recorded observations.
func (s *Sniffer) Reset() { s.Obs = nil }

func (s *Sniffer) onFrame(f phy.Frame, rx sim.Reception) {
	if !s.Capturing {
		return
	}
	p := rx.PowerDBm + s.GainOffsetDB
	if p < s.SensitivityDBm {
		return
	}
	s.Obs = append(s.Obs, Observation{
		Start:      rx.Start,
		End:        rx.End,
		PowerDBm:   p,
		AmplitudeV: AmplitudeFromPower(p),
		Type:       f.Type,
		Src:        f.Src,
		Meta:       f.Meta,
		MPDUs:      f.MPDUs,
		Retry:      f.Retry,
		Collided:   rx.Collided,
	})
}

// Window returns the observations overlapping [from, to), sorted by
// start time.
func (s *Sniffer) Window(from, to sim.Time) []Observation {
	var out []Observation
	for _, o := range s.Obs {
		if o.End > from && o.Start < to {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Envelope synthesizes the undersampled scope trace of [from, to) at the
// given sample rate: the amplitude at each sample instant is the root
// sum of squares of all frames on air (plus nothing when idle). This is
// the raw material of the paper's Figs. 3, 8, 15 and 21.
func (s *Sniffer) Envelope(from, to sim.Time, sampleRate float64) []float64 {
	n := int((to - from).Seconds() * sampleRate)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	win := s.Window(from, to)
	for i := range out {
		t := from + sim.Time(float64(to-from)*float64(i)/float64(n))
		sum := 0.0
		for _, o := range win {
			if o.Start <= t && t < o.End {
				sum += o.AmplitudeV * o.AmplitudeV
			}
		}
		out[i] = math.Sqrt(sum)
	}
	return out
}
