// Package sniffer models the paper's measurement instrument: a Vubiq
// 60 GHz down-converter with either a 25 dBi horn or an open waveguide,
// feeding an oscilloscope that undersamples the analog envelope
// (Section 3.1). The real setup cannot decode frames — all of the
// paper's trace analyses work from frame timing and amplitude alone —
// so the sniffer records exactly that: per-frame observations with
// received power, start/end time, and collision annotations, plus
// synthesized envelope samples for figure-style inspection.
package sniffer

import (
	"math"
	"sort"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Observation is one overheard frame: what the oscilloscope trace shows
// after the paper's offline Matlab processing (timing + amplitude), with
// ground-truth annotations alongside for validation.
type Observation struct {
	// Start and End bound the frame on air.
	Start, End sim.Time
	// PowerDBm is the received signal power at the sniffer.
	PowerDBm float64
	// AmplitudeV is the envelope amplitude in volts, as the scope
	// displays it (√power with the frontend's fixed conversion gain).
	AmplitudeV float64
	// Type, Src, Meta, MPDUs mirror the frame's ground truth. The
	// analyses in the trace package deliberately avoid these fields
	// except where the paper also had side information (e.g. device
	// positions for separating link directions by amplitude).
	Type  phy.FrameType
	Src   int
	Meta  int
	MPDUs int
	// Retry and Collided annotate loss events (used to validate the
	// Fig. 21 effects, not by the analyses themselves).
	Retry    bool
	Collided bool
}

// Duration returns the frame's air time.
func (o Observation) Duration() sim.Time { return o.End - o.Start }

// referencePowerDBm maps received power to scope volts: -30 dBm ≡ 1 V at
// the ADC after the frontend's conversion gain.
const referencePowerDBm = -30

// AmplitudeFromPower converts dBm to envelope volts.
func AmplitudeFromPower(dbm float64) float64 {
	return math.Pow(10, (dbm-referencePowerDBm)/20)
}

// Sink consumes observations as they are captured. Implementations
// include TraceWriter (streaming capture files) and the trace package's
// streaming aggregators; sinks run synchronously on the scheduler
// goroutine and must not block.
type Sink interface {
	Capture(Observation) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Observation) error

// Capture implements Sink.
func (f SinkFunc) Capture(o Observation) error { return f(o) }

// Tee fans each observation out to every sink in order. The first error
// per observation is returned (remaining sinks still receive it).
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(o Observation) error {
		var first error
		for _, s := range sinks {
			if err := s.Capture(o); err != nil && first == nil {
				first = err
			}
		}
		return first
	})
}

// CaptureStats count what the instrument saw and where it went.
type CaptureStats struct {
	// Captured is the total observations above sensitivity, whether
	// retained in memory, streamed to the sink, or both.
	Captured uint64
	// SinkDrops counts observations the sink rejected.
	SinkDrops uint64
}

// Sniffer is a receive-only radio that records every frame above its
// sensitivity.
type Sniffer struct {
	radio *sim.Radio
	// Obs accumulates observations in arrival order. With a positive
	// Retain window, old entries are pruned as new frames arrive.
	Obs []Observation
	// SensitivityDBm drops frames weaker than this (the scope's noise
	// floor); default -75 dBm.
	SensitivityDBm float64
	// GainOffsetDB models the adjustable receiver gain; the paper adds
	// +10 dB when measuring the rotated dock's weak patterns (§4.2).
	GainOffsetDB float64
	// Capturing can be toggled to bound memory in long runs.
	Capturing bool
	// Sink, when non-nil, receives every observation at capture time —
	// the streaming path for unbounded captures.
	Sink Sink
	// SinkOnly suppresses the in-memory Obs accumulation entirely, so a
	// long capture costs O(1) memory; Window and Envelope then see only
	// what Obs holds (nothing, unless Retain keeps a recent window).
	SinkOnly bool
	// Retain bounds the in-memory history: when positive, observations
	// whose End is older than Retain before the newest frame are pruned.
	// This keeps Window/Envelope usable for recent excerpts while a long
	// capture streams to the Sink.
	Retain sim.Time
	// Stats counts captured observations and sink drops.
	Stats CaptureStats
	// SinkErr records the first error the sink returned.
	SinkErr error
	// stale is the length of the Obs prefix already identified as older
	// than the Retain window (compacted away once it dominates).
	stale int
}

// New mounts a sniffer at pos with the given antenna pattern oriented
// towards boresight (radians). Use antenna.MeasurementHorn() for beam
// pattern work or antenna.OpenWaveguide() for protocol analysis.
func New(med *sim.Medium, name string, pos geom.Vec2, pat antenna.Pattern, boresight float64) *Sniffer {
	sn := &Sniffer{SensitivityDBm: -75, Capturing: true}
	sn.radio = med.AddRadio(&sim.Radio{
		Name:           name,
		Pos:            pos,
		ListenFloorDBm: -95,
	})
	sn.SetPattern(pat, boresight)
	sn.radio.Handler = sim.HandlerFunc(sn.onFrame)
	return sn
}

// Radio exposes the underlying radio.
func (s *Sniffer) Radio() *sim.Radio { return s.radio }

// SetPattern re-aims the sniffer (the paper physically rotates the
// Vubiq between measurement positions). A nil pattern selects isotropic
// reception.
func (s *Sniffer) SetPattern(pat antenna.Pattern, boresight float64) {
	if pat == nil {
		pat = antenna.Isotropic{}
	}
	s.radio.RxGain = antenna.Oriented{Pattern: pat, Boresight: boresight}.GainFunc()
}

// Move relocates the sniffer, invalidating only the channel-cache pairs
// that involve its radio — every other link's ray-traced paths survive
// the move (the paper's Fig. 18/19 methodology repositions the Vubiq six
// times through an otherwise static room).
func (s *Sniffer) Move(med *sim.Medium, pos geom.Vec2) {
	s.radio.Pos = pos
	med.InvalidateRadio(s.radio.ID)
}

// Reset clears the recorded observations and capture counters. The sink
// is left attached.
func (s *Sniffer) Reset() {
	s.Obs = nil
	s.Stats = CaptureStats{}
	s.SinkErr = nil
	s.stale = 0
}

func (s *Sniffer) onFrame(f phy.Frame, rx sim.Reception) {
	if !s.Capturing {
		return
	}
	p := rx.PowerDBm + s.GainOffsetDB
	if p < s.SensitivityDBm {
		return
	}
	o := Observation{
		Start:      rx.Start,
		End:        rx.End,
		PowerDBm:   p,
		AmplitudeV: AmplitudeFromPower(p),
		Type:       f.Type,
		Src:        f.Src,
		Meta:       f.Meta,
		MPDUs:      f.MPDUs,
		Retry:      f.Retry,
		Collided:   rx.Collided,
	}
	s.Stats.Captured++
	if s.Sink != nil {
		if err := s.Sink.Capture(o); err != nil {
			s.Stats.SinkDrops++
			if s.SinkErr == nil {
				s.SinkErr = err
			}
		}
	}
	if s.SinkOnly {
		return
	}
	s.Obs = append(s.Obs, o)
	if s.Retain > 0 {
		s.prune(o.End - s.Retain)
	}
}

// prune drops observations that ended before cutoff. Obs is appended in
// frame-end order, so the stale prefix is contiguous; each entry is
// examined once and compaction waits until the stale prefix dominates,
// keeping the cost amortized-constant per frame.
func (s *Sniffer) prune(cutoff sim.Time) {
	for s.stale < len(s.Obs) && s.Obs[s.stale].End < cutoff {
		s.stale++
	}
	if s.stale*2 < len(s.Obs) {
		return
	}
	s.Obs = append(s.Obs[:0], s.Obs[s.stale:]...)
	s.stale = 0
}

// Window returns the observations overlapping [from, to), sorted by
// start time.
func (s *Sniffer) Window(from, to sim.Time) []Observation {
	var out []Observation
	for _, o := range s.Obs {
		if o.End > from && o.Start < to {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Envelope synthesizes the undersampled scope trace of [from, to) at the
// given sample rate: the amplitude at each sample instant is the root
// sum of squares of all frames on air (plus nothing when idle). This is
// the raw material of the paper's Figs. 3, 8, 15 and 21.
func (s *Sniffer) Envelope(from, to sim.Time, sampleRate float64) []float64 {
	n := int((to - from).Seconds() * sampleRate)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	win := s.Window(from, to)
	for i := range out {
		t := from + sim.Time(float64(to-from)*float64(i)/float64(n))
		sum := 0.0
		for _, o := range win {
			if o.Start <= t && t < o.End {
				sum += o.AmplitudeV * o.AmplitudeV
			}
		}
		out[i] = math.Sqrt(sum)
	}
	return out
}
