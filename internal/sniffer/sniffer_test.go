package sniffer

import (
	"math"
	"testing"
	"time"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/rf"
	"repro/internal/sim"
)

func testMedium(seed uint64) (*sim.Scheduler, *sim.Medium) {
	s := sim.NewScheduler()
	med := sim.NewMedium(s, geom.Open(), rf.FreqChannel2Hz, rf.DefaultBudget(), seed)
	med.FadingSigmaDB = 0
	med.Budget.ShadowingSigmaDB = 0
	return s, med
}

func TestSnifferRecordsFrames(t *testing.T) {
	s, med := testMedium(1)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, Dst: -1, MCS: phy.MCS8, PayloadBytes: 3000, MPDUs: 2})
	s.Run(time.Second)
	if len(sn.Obs) != 1 {
		t.Fatalf("observations = %d", len(sn.Obs))
	}
	o := sn.Obs[0]
	if o.Type != phy.FrameData || o.MPDUs != 2 || o.Src != tx.ID {
		t.Errorf("observation = %+v", o)
	}
	if o.Duration() != phy.MCS8.FrameDuration(3000) {
		t.Errorf("duration = %v", o.Duration())
	}
	if o.AmplitudeV <= 0 {
		t.Error("amplitude not positive")
	}
}

func TestSnifferSensitivity(t *testing.T) {
	s, med := testMedium(2)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: -10})
	sn := New(med, "vubiq", geom.V(4, 0), antenna.OpenWaveguide(), math.Pi)
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1000})
	s.Run(time.Second)
	if len(sn.Obs) != 0 {
		t.Errorf("weak frame recorded: %+v", sn.Obs)
	}
	// Gain offset rescues it (the paper's +10 dB receiver gain trick).
	sn.GainOffsetDB = 10
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1000})
	s.Run(s.Now() + time.Second)
	if len(sn.Obs) != 1 {
		t.Errorf("gain offset did not rescue: %d", len(sn.Obs))
	}
}

func TestAmplitudeMapping(t *testing.T) {
	if v := AmplitudeFromPower(referencePowerDBm); math.Abs(v-1) > 1e-12 {
		t.Errorf("reference amplitude = %v", v)
	}
	// +6 dB doubles amplitude (20·log10 scale).
	r := AmplitudeFromPower(referencePowerDBm+6.02) / AmplitudeFromPower(referencePowerDBm)
	if math.Abs(r-2) > 0.01 {
		t.Errorf("6 dB ratio = %v", r)
	}
}

func TestCapturingToggleAndReset(t *testing.T) {
	s, med := testMedium(3)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	sn.Capturing = false
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1000})
	s.Run(time.Second)
	if len(sn.Obs) != 0 {
		t.Error("captured while disabled")
	}
	sn.Capturing = true
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1000})
	s.Run(s.Now() + time.Second)
	if len(sn.Obs) != 1 {
		t.Fatal("capture did not resume")
	}
	sn.Reset()
	if len(sn.Obs) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWindowSorted(t *testing.T) {
	s, med := testMedium(4)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	for i := 0; i < 5; i++ {
		at := sim.Time(i) * time.Millisecond
		s.At(at, func() {
			med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1000})
		})
	}
	s.Run(time.Second)
	w := sn.Window(500*time.Microsecond, 3500*time.Microsecond)
	if len(w) != 3 {
		t.Fatalf("window frames = %d, want 3", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i].Start < w[i-1].Start {
			t.Error("window not sorted")
		}
	}
}

func TestEnvelope(t *testing.T) {
	s, med := testMedium(5)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	s.At(100*time.Microsecond, func() {
		med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 6000})
	})
	s.Run(time.Millisecond)
	env := sn.Envelope(0, 200*time.Microsecond, 10e6) // 10 MS/s → 2000 samples
	if len(env) != 2000 {
		t.Fatalf("samples = %d", len(env))
	}
	// Idle before 100 µs, busy after.
	if env[500] != 0 {
		t.Errorf("pre-frame sample = %v", env[500])
	}
	if env[1100] <= 0 {
		t.Errorf("in-frame sample = %v", env[1100])
	}
}

func TestHornVsWaveguideSelectivity(t *testing.T) {
	// A horn pointed away from the transmitter must hear far less than
	// the open waveguide.
	s, med := testMedium(6)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	horn := New(med, "horn", geom.V(2, 0), antenna.MeasurementHorn(), 0) // pointing +X, away
	wg := New(med, "wg", geom.V(2, 0.01), antenna.OpenWaveguide(), math.Pi)
	med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1000})
	s.Run(time.Second)
	if len(wg.Obs) != 1 {
		t.Fatal("waveguide missed the frame")
	}
	if len(horn.Obs) == 1 && horn.Obs[0].PowerDBm > wg.Obs[0].PowerDBm-20 {
		t.Errorf("misaimed horn too loud: %v vs %v", horn.Obs[0].PowerDBm, wg.Obs[0].PowerDBm)
	}
}

func TestAngularProfileLobes(t *testing.T) {
	p := AngularProfile{
		AnglesRad: []float64{-math.Pi, -math.Pi / 2, 0, math.Pi / 2},
		PowerDBm:  []float64{-60, -45, -40, -58},
	}
	if got := p.PeakAngle(); got != 0 {
		t.Errorf("PeakAngle = %v", got)
	}
	if got := p.PeakDBm(); got != -40 {
		t.Errorf("PeakDBm = %v", got)
	}
	n := p.Normalized()
	if n[2] != 0 || n[1] != -5 {
		t.Errorf("Normalized = %v", n)
	}
	lobes := p.Lobes(-8)
	if len(lobes) != 1 || lobes[0] != 0 {
		t.Errorf("Lobes = %v", lobes)
	}
	if !p.HasLobeTowards(0.1, 0.2, -8) {
		t.Error("HasLobeTowards missed")
	}
	if p.HasLobeTowards(math.Pi, 0.2, -8) {
		t.Error("HasLobeTowards false positive")
	}
}

func TestMeasureAngularProfileFindsTransmitter(t *testing.T) {
	// A transmitter due east; the rotating horn must localize it.
	s, med := testMedium(7)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(3, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(0, 0), antenna.MeasurementHorn(), 0)
	stop := false
	var emit func()
	emit = func() {
		if stop {
			return
		}
		med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 3000})
		s.After(50*time.Microsecond, emit)
	}
	s.After(0, emit)
	prof := sn.MeasureAngularProfile(med, 72, 2*time.Millisecond)
	stop = true
	if math.Abs(geom.AngleDiff(prof.PeakAngle(), 0)) > geom.Rad(10) {
		t.Errorf("peak at %v°, want ≈0°", geom.Deg(prof.PeakAngle()))
	}
	if !prof.HasLobeTowards(0, geom.Rad(10), -8) {
		t.Error("no lobe towards the transmitter")
	}
}

func TestMeasureAngularProfileSeesReflection(t *testing.T) {
	// Transmitter east, metal wall north: the profile must include a
	// second lobe towards the wall's reflection point.
	s, med := testMediumWithRoom(8)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(3, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(0, 0), antenna.MeasurementHorn(), 0)
	stop := false
	var emit func()
	emit = func() {
		if stop {
			return
		}
		med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 3000})
		s.After(50*time.Microsecond, emit)
	}
	s.After(0, emit)
	prof := sn.MeasureAngularProfile(med, 72, 2*time.Millisecond)
	stop = true
	// LOS lobe towards 0°, reflected lobe towards the mirror point
	// (1.5, 1) ⇒ atan2(1, 1.5) ≈ 33.7°.
	if !prof.HasLobeTowards(0, geom.Rad(10), -8) {
		t.Error("LOS lobe missing")
	}
	reflDir := geom.V(1.5, 1).Angle()
	if !prof.HasLobeTowards(reflDir, geom.Rad(12), -12) {
		t.Errorf("reflection lobe missing towards %.0f°; lobes at %v",
			geom.Deg(reflDir), degs(prof.Lobes(-12)))
	}
}

func testMediumWithRoom(seed uint64) (*sim.Scheduler, *sim.Medium) {
	s := sim.NewScheduler()
	room := geom.Open()
	room.AddWall(geom.V(-10, 1), geom.V(10, 1), "metal")
	med := sim.NewMedium(s, room, rf.FreqChannel2Hz, rf.DefaultBudget(), seed)
	med.FadingSigmaDB = 0
	med.Budget.ShadowingSigmaDB = 0
	return s, med
}

func degs(rads []float64) []float64 {
	out := make([]float64, len(rads))
	for i, r := range rads {
		out[i] = geom.Deg(r)
	}
	return out
}

func TestSemicircleSweepMeasuresPattern(t *testing.T) {
	// A horn transmitter facing +X measured on the semicircle: the
	// sweep's peak position must be near 0° and the profile must fall
	// off the boresight.
	s, med := testMedium(9)
	horn := antenna.Horn{PeakGainDBi: 15, HPBWDeg: 20}
	tx := med.AddRadio(&sim.Radio{
		Name: "dut", Pos: geom.V(0, 0), TxPowerDBm: 0,
		TxGain: antenna.Oriented{Pattern: horn, Boresight: 0}.GainFunc(),
	})
	sn := New(med, "vubiq", geom.V(3.2, 0), antenna.MeasurementHorn(), math.Pi)
	stop := false
	var emit func()
	emit = func() {
		if stop {
			return
		}
		med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 3000})
		s.After(50*time.Microsecond, emit)
	}
	s.After(0, emit)
	prof := sn.SemicircleSweep(med, geom.V(0, 0), 3.2, 33, time.Millisecond)
	stop = true
	if math.Abs(prof.PeakAngle()) > geom.Rad(8) {
		t.Errorf("pattern peak at %v°", geom.Deg(prof.PeakAngle()))
	}
	// Off-boresight positions read much weaker.
	norm := prof.Normalized()
	if norm[0] > -10 {
		t.Errorf("edge of semicircle reads %v dB, want ≤ -10", norm[0])
	}
}
