package sniffer

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/sim"
)

func sampleObs() []Observation {
	return []Observation{
		{Type: phy.FrameData, Src: 1, Meta: 0, MPDUs: 7,
			Start: 100 * time.Microsecond, End: 125 * time.Microsecond,
			PowerDBm: -42.5, AmplitudeV: AmplitudeFromPower(-42.5), Retry: true, Collided: true},
		{Type: phy.FrameBeacon, Src: 0,
			Start: 200 * time.Microsecond, End: 214 * time.Microsecond,
			PowerDBm: -51.25, AmplitudeV: AmplitudeFromPower(-51.25)},
		{Type: phy.FrameDiscovery, Src: 2, Meta: 31,
			Start: 300 * time.Microsecond, End: 322 * time.Microsecond,
			PowerDBm: -60, AmplitudeV: AmplitudeFromPower(-60)},
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	in := sampleObs()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("records = %d", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Type != b.Type || a.Src != b.Src || a.Meta != b.Meta || a.MPDUs != b.MPDUs ||
			a.Start != b.Start || a.End != b.End || a.PowerDBm != b.PowerDBm ||
			a.Retry != b.Retry || a.Collided != b.Collided {
			t.Errorf("record %d mismatch:\n in %+v\nout %+v", i, a, b)
		}
		if b.AmplitudeV != AmplitudeFromPower(b.PowerDBm) {
			t.Errorf("record %d amplitude not rederived", i)
		}
	}
}

func TestTraceFileEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil || len(out) != 0 {
		t.Errorf("empty round trip: %v, %d", err, len(out))
	}
}

func TestTraceFileCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleObs()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncated.
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated file accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupted record header (CRC catches it).
	bad = append([]byte(nil), raw...)
	bad[16+3] ^= 0x01
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted record accepted")
	}
}

func TestTraceFileFromLiveCapture(t *testing.T) {
	s, med := testMedium(77)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 50 * time.Microsecond
		s.At(at, func() {
			med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1500})
		})
	}
	s.Run(5 * time.Millisecond)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sn.Obs); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(sn.Obs) {
		t.Fatalf("%d of %d records survived", len(out), len(sn.Obs))
	}
}
