package sniffer

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
	"time"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/sim"
)

func sampleObs() []Observation {
	return []Observation{
		{Type: phy.FrameData, Src: 1, Meta: 0, MPDUs: 7,
			Start: 100 * time.Microsecond, End: 125 * time.Microsecond,
			PowerDBm: -42.5, AmplitudeV: AmplitudeFromPower(-42.5), Retry: true, Collided: true},
		{Type: phy.FrameBeacon, Src: 0,
			Start: 200 * time.Microsecond, End: 214 * time.Microsecond,
			PowerDBm: -51.25, AmplitudeV: AmplitudeFromPower(-51.25)},
		{Type: phy.FrameDiscovery, Src: 2, Meta: 31,
			Start: 300 * time.Microsecond, End: 322 * time.Microsecond,
			PowerDBm: -60, AmplitudeV: AmplitudeFromPower(-60)},
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	in := sampleObs()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("records = %d", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Type != b.Type || a.Src != b.Src || a.Meta != b.Meta || a.MPDUs != b.MPDUs ||
			a.Start != b.Start || a.End != b.End || a.PowerDBm != b.PowerDBm ||
			a.Retry != b.Retry || a.Collided != b.Collided {
			t.Errorf("record %d mismatch:\n in %+v\nout %+v", i, a, b)
		}
		if b.AmplitudeV != AmplitudeFromPower(b.PowerDBm) {
			t.Errorf("record %d amplitude not rederived", i)
		}
	}
}

func TestTraceFileEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil || len(out) != 0 {
		t.Errorf("empty round trip: %v, %d", err, len(out))
	}
}

func TestTraceFileCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleObs()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncation is recovery, not an error, in the v2 format: the valid
	// prefix comes back.
	out, err := ReadTrace(bytes.NewReader(raw[:len(raw)-5]))
	if err != nil {
		t.Errorf("truncated v2 file did not recover: %v", err)
	}
	if len(out) != len(sampleObs()) {
		// Cutting 5 bytes destroys (at least) the footer; all records
		// should still be intact here.
		t.Errorf("truncated v2 file recovered %d of %d records", len(out), len(sampleObs()))
	}
	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupted record payload with more data behind it (CRC catches it).
	bad = append([]byte(nil), raw...)
	bad[16+3] ^= 0x01
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted record accepted")
	}
	// A verifiable footer whose record count disagrees with the stream
	// is corruption (the CRC must be refreshed to isolate the check —
	// an unverifiable footer reads as truncation instead).
	bad = append([]byte(nil), raw...)
	foot := bad[len(bad)-20:]
	foot[0] ^= 0x01 // count field
	binary.LittleEndian.PutUint32(foot[16:], crc32.Checksum(foot[:16], traceCRCTable))
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("footer count mismatch accepted")
	}
}

func TestTraceFileRejectsCorruptAnnex(t *testing.T) {
	mk := func(mut func(*Observation)) []byte {
		obs := sampleObs()[:1]
		mut(&obs[0])
		// Bypass writer validation: encode a valid record, then splice
		// the corrupt field into the v1 layout where validation used to
		// be absent.
		var buf bytes.Buffer
		if err := writeTraceV1(&buf, sampleObs()[:1]); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		annex := raw[16+28:]
		binary.LittleEndian.PutUint64(annex[0:], uint64(obs[0].Start))
		binary.LittleEndian.PutUint64(annex[8:], uint64(obs[0].End))
		binary.LittleEndian.PutUint64(annex[16:], math.Float64bits(obs[0].PowerDBm))
		return raw
	}
	cases := map[string]func(*Observation){
		"end before start":   func(o *Observation) { o.End = o.Start - time.Microsecond },
		"negative timestamp": func(o *Observation) { o.Start = -5; o.End = -1 },
		"NaN power":          func(o *Observation) { o.PowerDBm = math.NaN() },
		"Inf power":          func(o *Observation) { o.PowerDBm = math.Inf(1) },
	}
	for name, mut := range cases {
		if _, err := ReadTrace(bytes.NewReader(mk(mut))); !errors.Is(err, ErrBadTraceFile) {
			t.Errorf("%s: err = %v, want ErrBadTraceFile", name, err)
		}
	}
}

func TestWriteTraceRejectsInvalid(t *testing.T) {
	cases := map[string]Observation{
		"end before start": {Start: 10 * time.Microsecond, End: 5 * time.Microsecond, PowerDBm: -50},
		"negative start":   {Start: -time.Microsecond, End: time.Microsecond, PowerDBm: -50},
		"NaN power":        {Start: 1, End: 2, PowerDBm: math.NaN()},
		"negative MPDUs":   {Start: 1, End: 2, PowerDBm: -50, MPDUs: -1},
		"negative meta":    {Start: 1, End: 2, PowerDBm: -50, Meta: -3},
	}
	for name, o := range cases {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, []Observation{o}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestTraceFileWideAggregation: the v2 varint fields carry MPDU counts
// past the one-byte v1 cap without corruption (the clampByte bug).
func TestTraceFileWideAggregation(t *testing.T) {
	in := []Observation{{
		Type: phy.FrameData, Src: 1, MPDUs: 4096, Meta: 70000,
		Start: time.Millisecond, End: 2 * time.Millisecond, PowerDBm: -40,
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil || len(out) != 1 {
		t.Fatalf("read: %v (%d records)", err, len(out))
	}
	if out[0].MPDUs != 4096 || out[0].Meta != 70000 {
		t.Errorf("aggregation fields corrupted: MPDUs=%d Meta=%d", out[0].MPDUs, out[0].Meta)
	}
	// The legacy writer must refuse rather than clamp.
	if err := writeTraceV1(&buf, in); err == nil {
		t.Error("v1 writer clamped an out-of-range MPDU count instead of erroring")
	}
}

func TestTraceFileFromLiveCapture(t *testing.T) {
	s, med := testMedium(77)
	tx := med.AddRadio(&sim.Radio{Name: "tx", Pos: geom.V(0, 0), TxPowerDBm: 10})
	sn := New(med, "vubiq", geom.V(2, 0), antenna.OpenWaveguide(), math.Pi)
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 50 * time.Microsecond
		s.At(at, func() {
			med.Transmit(tx, phy.Frame{Type: phy.FrameData, Src: tx.ID, MCS: phy.MCS8, PayloadBytes: 1500})
		})
	}
	s.Run(5 * time.Millisecond)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sn.Obs); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(sn.Obs) {
		t.Fatalf("%d of %d records survived", len(out), len(sn.Obs))
	}
}
