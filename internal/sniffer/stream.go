package sniffer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/phy"
	"repro/internal/recio"
	"repro/internal/sim"
)

// Version-2 capture format — the streaming, crash-safe trace layout.
//
// A v2 file is the generic recio framing (see internal/recio: 16-byte
// magic/version header, length-delimited CRC32-C records, sentinel
// footer, valid-prefix recovery after a crash) carrying one observation
// per record. Record payload fields, in order:
//
//	uvarint type | uvarint src | uvarint mpdus | uvarint meta
//	uvarint startNs | uvarint endNs | powerBits uint64 | flags uint8
//
// MPDUs and Meta are varints (v1 capped them at one byte, silently
// corrupting aggregation statistics for large bursts). The reader
// rejects records whose annex is semantically invalid — End < Start,
// negative timestamps, non-finite power — with ErrBadTraceFile.
//
// Truncation policy (inherited from recio): damage at the end of the
// file (missing footer, a cut record, an unverifiable footer) is
// recovered silently — Next returns io.EOF and Truncated() reports
// true. Damage in the middle of the file (a record whose checksum fails
// with more data behind it, or a footer whose count disagrees with the
// records read) is corruption and surfaces as ErrBadTraceFile.

// traceVersion2 identifies the streaming format.
const traceVersion2 = 2

// maxFieldValue bounds the integer annex fields (type, src, mpdus, meta)
// so corrupt varints cannot smuggle absurd values into analyses.
const maxFieldValue = 1 << 30

// traceCRCTable is the checksum table of the framing layer (CRC32-C,
// shared with internal/recio); kept here so format tests can recompute
// record and footer checksums.
var traceCRCTable = crc32.MakeTable(crc32.Castagnoli)

// record flag bits (shared with the v1 annex encoding).
const (
	recRetry    = 1 << 0
	recCollided = 1 << 1
)

// checkObservation validates the semantic invariants every stored record
// must satisfy. Both the writer (refusing to persist garbage) and the
// reader (refusing to surface it) enforce the same set.
func checkObservation(o Observation) error {
	if o.Start < 0 {
		return fmt.Errorf("negative start time %v", o.Start)
	}
	if o.End < o.Start {
		return fmt.Errorf("end %v before start %v", o.End, o.Start)
	}
	if math.IsNaN(o.PowerDBm) || math.IsInf(o.PowerDBm, 0) {
		return fmt.Errorf("non-finite power %v", o.PowerDBm)
	}
	if o.Type < 0 || int64(o.Type) > maxFieldValue {
		return fmt.Errorf("frame type %d out of range", int(o.Type))
	}
	if o.Src < 0 || int64(o.Src) > maxFieldValue {
		return fmt.Errorf("source %d out of range", o.Src)
	}
	if o.MPDUs < 0 || int64(o.MPDUs) > maxFieldValue {
		return fmt.Errorf("MPDU count %d out of range", o.MPDUs)
	}
	if o.Meta < 0 || int64(o.Meta) > maxFieldValue {
		return fmt.Errorf("meta %d out of range", o.Meta)
	}
	return nil
}

// WriterStats are the lightweight counters a TraceWriter maintains for
// campaign summaries.
type WriterStats struct {
	// Records is the number of records written so far.
	Records uint64
	// Bytes is the total bytes emitted, including framing.
	Bytes uint64
	// Drops counts observations rejected by validation.
	Drops uint64
}

// TraceWriter streams observations to a v2 capture file in O(1) memory.
// It implements Sink, so it can be attached directly to a Sniffer.
// Close writes the footer; a capture missing its footer (crash before
// Close) is still readable up to the last complete record.
type TraceWriter struct {
	rw    *recio.Writer
	buf   []byte // reused payload scratch
	drops uint64
}

// NewTraceWriter writes the v2 header to w and returns a writer ready to
// append records. The caller owns w and must close it after Close.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	rw, err := recio.NewWriter(w, traceMagic, traceVersion2)
	if err != nil {
		return nil, err
	}
	return &TraceWriter{rw: rw, buf: make([]byte, 0, 128)}, nil
}

// Write appends one observation as a record. Invalid observations
// (End < Start, negative timestamps, non-finite power, out-of-range
// counts) are counted as drops and returned as errors without being
// written.
func (tw *TraceWriter) Write(o Observation) error {
	if err := checkObservation(o); err != nil {
		tw.drops++
		return fmt.Errorf("sniffer: invalid observation: %w", err)
	}
	p := tw.buf[:0]
	p = binary.AppendUvarint(p, uint64(o.Type))
	p = binary.AppendUvarint(p, uint64(o.Src))
	p = binary.AppendUvarint(p, uint64(o.MPDUs))
	p = binary.AppendUvarint(p, uint64(o.Meta))
	p = binary.AppendUvarint(p, uint64(o.Start))
	p = binary.AppendUvarint(p, uint64(o.End))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(o.PowerDBm))
	var flags byte
	if o.Retry {
		flags |= recRetry
	}
	if o.Collided {
		flags |= recCollided
	}
	p = append(p, flags)
	tw.buf = p
	return tw.rw.Append(p)
}

// Capture implements Sink.
func (tw *TraceWriter) Capture(o Observation) error { return tw.Write(o) }

// Stats returns the writer's counters.
func (tw *TraceWriter) Stats() WriterStats {
	return WriterStats{Records: tw.rw.Records(), Bytes: tw.rw.Bytes(), Drops: tw.drops}
}

// Sync flushes buffered records and forces them to stable storage when
// the underlying writer supports it. Callers that care about crash
// durability (capture finalization, fault-injection tests) sync after
// Close to make the footer durable too.
func (tw *TraceWriter) Sync() error { return tw.rw.Sync() }

// Close writes the footer and flushes. The underlying writer is not
// closed. Close is idempotent.
func (tw *TraceWriter) Close() error { return tw.rw.Close() }

// TraceReader iterates the records of a capture file in O(1) memory. It
// reads both format versions: v1 (fixed-size records, count in header)
// and v2 (length-delimited, footer — decoded through recio). For v2 a
// truncated file — one that ends mid-record or without a verifiable
// footer — yields its valid prefix, after which Next returns io.EOF and
// Truncated reports true.
type TraceReader struct {
	br        *bufio.Reader
	rr        *recio.Reader // v2 framing; nil for v1
	version   int
	remaining uint64 // v1: records left per the header count
	v1Frame   []byte // reused v1 header scratch
	records   uint64
	done      bool
	err       error
}

// NewTraceReader parses the file header and returns an iterator over the
// records. It fails with ErrBadTraceFile when the header is not a
// capture header of a supported version.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTraceFile)
	}
	tr := &TraceReader{br: br}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case traceVersion:
		tr.version = traceVersion
		n := binary.LittleEndian.Uint64(hdr[8:])
		if n > 1<<32 {
			return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTraceFile, n)
		}
		tr.remaining = n
		tr.v1Frame = make([]byte, phy.HeaderSize)
	case traceVersion2:
		tr.version = traceVersion2
		tr.rr = recio.Resume(br)
		tr.rr.BaseErr = ErrBadTraceFile
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTraceFile, v)
	}
	return tr, nil
}

// Version reports the format version of the file being read.
func (tr *TraceReader) Version() int { return tr.version }

// Records reports how many records have been returned so far.
func (tr *TraceReader) Records() uint64 { return tr.records }

// Truncated reports whether the stream ended without a verifiable
// footer — the capture was cut short and Next returned the recovered
// prefix. Only meaningful after Next has returned io.EOF.
func (tr *TraceReader) Truncated() bool { return tr.rr != nil && tr.rr.Truncated() }

// Next returns the next observation. It returns io.EOF at the end of
// the capture (including the recovered end of a truncated v2 file) and
// ErrBadTraceFile on corruption.
func (tr *TraceReader) Next() (Observation, error) {
	if tr.err != nil {
		return Observation{}, tr.err
	}
	if tr.done {
		return Observation{}, io.EOF
	}
	var o Observation
	var err error
	if tr.version == traceVersion {
		o, err = tr.nextV1()
	} else {
		o, err = tr.nextV2()
	}
	if err != nil {
		tr.done = true
		if err != io.EOF {
			tr.err = err
		}
		return Observation{}, err
	}
	tr.records++
	return o, nil
}

func (tr *TraceReader) nextV1() (Observation, error) {
	if tr.remaining == 0 {
		return Observation{}, io.EOF
	}
	i := tr.records
	if _, err := io.ReadFull(tr.br, tr.v1Frame); err != nil {
		return Observation{}, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, i, err)
	}
	f, err := phy.UnmarshalHeader(tr.v1Frame)
	if err != nil {
		return Observation{}, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, i, err)
	}
	var annex [annexSize]byte
	if _, err := io.ReadFull(tr.br, annex[:]); err != nil {
		return Observation{}, fmt.Errorf("%w: record %d annex: %v", ErrBadTraceFile, i, err)
	}
	o := Observation{
		Type:     f.Type,
		Src:      f.Src,
		Meta:     f.Meta,
		MPDUs:    f.MPDUs,
		Start:    sim.Time(binary.LittleEndian.Uint64(annex[0:])),
		End:      sim.Time(binary.LittleEndian.Uint64(annex[8:])),
		PowerDBm: math.Float64frombits(binary.LittleEndian.Uint64(annex[16:])),
		Retry:    annex[24]&annexRetry != 0,
		Collided: annex[24]&annexCollided != 0,
	}
	if err := checkObservation(o); err != nil {
		return Observation{}, fmt.Errorf("%w: record %d annex: %v", ErrBadTraceFile, i, err)
	}
	o.AmplitudeV = AmplitudeFromPower(o.PowerDBm)
	tr.remaining--
	return o, nil
}

func (tr *TraceReader) nextV2() (Observation, error) {
	p, err := tr.rr.Next()
	if err != nil {
		return Observation{}, err
	}
	o, err := decodeRecord(p)
	if err != nil {
		return Observation{}, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, tr.records, err)
	}
	return o, nil
}

// decodeRecord parses and validates one v2 record payload.
func decodeRecord(p []byte) (Observation, error) {
	var o Observation
	var fields [6]uint64
	for i := range fields {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return o, fmt.Errorf("malformed payload")
		}
		fields[i] = v
		p = p[n:]
	}
	typ, src, mpdus, meta, start, end := fields[0], fields[1], fields[2], fields[3], fields[4], fields[5]
	if len(p) != 9 {
		return o, fmt.Errorf("malformed payload")
	}
	o.Type = phy.FrameType(typ)
	o.Src = int(src)
	o.MPDUs = int(mpdus)
	o.Meta = int(meta)
	o.Start = sim.Time(start)
	o.End = sim.Time(end)
	o.PowerDBm = math.Float64frombits(binary.LittleEndian.Uint64(p))
	o.Retry = p[8]&recRetry != 0
	o.Collided = p[8]&recCollided != 0
	if typ > maxFieldValue || src > maxFieldValue || mpdus > maxFieldValue || meta > maxFieldValue ||
		start > math.MaxInt64 || end > math.MaxInt64 {
		return o, fmt.Errorf("field out of range")
	}
	if err := checkObservation(o); err != nil {
		return o, err
	}
	o.AmplitudeV = AmplitudeFromPower(o.PowerDBm)
	return o, nil
}
