package sniffer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Version-2 capture format — the streaming, crash-safe trace layout.
//
// A v2 file is written incrementally: records are appended as frames are
// observed and the only state that must survive to the end is a small
// footer. A capture that dies mid-write (power loss, crash, full disk)
// loses at most its final partial record; the reader recovers the valid
// prefix.
//
// Layout (all integers little-endian, varints per encoding/binary):
//
//	header (16 B)  magic uint32 | version=2 uint32 | reserved 8 B (zero)
//	record         uvarint payloadLen | payload | crc32c(payload) uint32
//	...
//	footer         uvarint 0 (sentinel) | records uint64 |
//	               payloadBytes uint64 | crc32c(prev 16 B) uint32
//
// A record payload is never empty, so a zero length unambiguously marks
// the footer. Record payload fields, in order:
//
//	uvarint type | uvarint src | uvarint mpdus | uvarint meta
//	uvarint startNs | uvarint endNs | powerBits uint64 | flags uint8
//
// MPDUs and Meta are varints (v1 capped them at one byte, silently
// corrupting aggregation statistics for large bursts). The reader
// rejects records whose annex is semantically invalid — End < Start,
// negative timestamps, non-finite power — with ErrBadTraceFile.
//
// Truncation policy: damage at the end of the file (missing footer, a
// cut record, an unverifiable footer) is recovered silently — Next
// returns io.EOF and Truncated() reports true. Damage in the middle of
// the file (a record whose checksum fails with more data behind it, or
// a footer whose count disagrees with the records read) is corruption
// and surfaces as ErrBadTraceFile.

// traceVersion2 identifies the streaming format.
const traceVersion2 = 2

// maxRecordLen bounds a single record payload; anything larger is
// corruption, not a frame observation (the largest legitimate payload is
// well under 100 bytes).
const maxRecordLen = 1 << 16

// maxFieldValue bounds the integer annex fields (type, src, mpdus, meta)
// so corrupt varints cannot smuggle absurd values into analyses.
const maxFieldValue = 1 << 30

var traceCRCTable = crc32.MakeTable(crc32.Castagnoli)

// record flag bits (shared with the v1 annex encoding).
const (
	recRetry    = 1 << 0
	recCollided = 1 << 1
)

// checkObservation validates the semantic invariants every stored record
// must satisfy. Both the writer (refusing to persist garbage) and the
// reader (refusing to surface it) enforce the same set.
func checkObservation(o Observation) error {
	if o.Start < 0 {
		return fmt.Errorf("negative start time %v", o.Start)
	}
	if o.End < o.Start {
		return fmt.Errorf("end %v before start %v", o.End, o.Start)
	}
	if math.IsNaN(o.PowerDBm) || math.IsInf(o.PowerDBm, 0) {
		return fmt.Errorf("non-finite power %v", o.PowerDBm)
	}
	if o.Type < 0 || int64(o.Type) > maxFieldValue {
		return fmt.Errorf("frame type %d out of range", int(o.Type))
	}
	if o.Src < 0 || int64(o.Src) > maxFieldValue {
		return fmt.Errorf("source %d out of range", o.Src)
	}
	if o.MPDUs < 0 || int64(o.MPDUs) > maxFieldValue {
		return fmt.Errorf("MPDU count %d out of range", o.MPDUs)
	}
	if o.Meta < 0 || int64(o.Meta) > maxFieldValue {
		return fmt.Errorf("meta %d out of range", o.Meta)
	}
	return nil
}

// WriterStats are the lightweight counters a TraceWriter maintains for
// campaign summaries.
type WriterStats struct {
	// Records is the number of records written so far.
	Records uint64
	// Bytes is the total bytes emitted, including framing.
	Bytes uint64
	// Drops counts observations rejected by validation.
	Drops uint64
}

// TraceWriter streams observations to a v2 capture file in O(1) memory.
// It implements Sink, so it can be attached directly to a Sniffer.
// Close writes the footer; a capture missing its footer (crash before
// Close) is still readable up to the last complete record.
type TraceWriter struct {
	bw     *bufio.Writer
	buf    []byte // reused payload scratch
	rec    []byte // reused framed-record scratch
	stats  WriterStats
	err    error
	closed bool
}

// NewTraceWriter writes the v2 header to w and returns a writer ready to
// append records. The caller owns w and must close it after Close.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	tw := &TraceWriter{bw: bufio.NewWriter(w), buf: make([]byte, 0, 128), rec: make([]byte, 0, 160)}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion2)
	if _, err := tw.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	tw.stats.Bytes = uint64(len(hdr))
	return tw, nil
}

// Write appends one observation as a record. Invalid observations
// (End < Start, negative timestamps, non-finite power, out-of-range
// counts) are counted as drops and returned as errors without being
// written.
func (tw *TraceWriter) Write(o Observation) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		return fmt.Errorf("sniffer: write on closed TraceWriter")
	}
	if err := checkObservation(o); err != nil {
		tw.stats.Drops++
		return fmt.Errorf("sniffer: invalid observation: %w", err)
	}
	p := tw.buf[:0]
	p = binary.AppendUvarint(p, uint64(o.Type))
	p = binary.AppendUvarint(p, uint64(o.Src))
	p = binary.AppendUvarint(p, uint64(o.MPDUs))
	p = binary.AppendUvarint(p, uint64(o.Meta))
	p = binary.AppendUvarint(p, uint64(o.Start))
	p = binary.AppendUvarint(p, uint64(o.End))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(o.PowerDBm))
	var flags byte
	if o.Retry {
		flags |= recRetry
	}
	if o.Collided {
		flags |= recCollided
	}
	p = append(p, flags)
	tw.buf = p

	// Assemble length | payload | crc in one reused buffer so a record
	// write stays allocation-free.
	r := tw.rec[:0]
	r = binary.AppendUvarint(r, uint64(len(p)))
	r = append(r, p...)
	r = binary.LittleEndian.AppendUint32(r, crc32.Checksum(p, traceCRCTable))
	tw.rec = r
	if _, err := tw.bw.Write(r); err != nil {
		return tw.fail(err)
	}
	tw.stats.Records++
	tw.stats.Bytes += uint64(len(r))
	return nil
}

// Capture implements Sink.
func (tw *TraceWriter) Capture(o Observation) error { return tw.Write(o) }

// Stats returns the writer's counters.
func (tw *TraceWriter) Stats() WriterStats { return tw.stats }

// Close writes the footer and flushes. The underlying writer is not
// closed. Close is idempotent.
func (tw *TraceWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		return nil
	}
	tw.closed = true
	var f [21]byte
	f[0] = 0 // zero-length sentinel: no record payload is ever empty
	binary.LittleEndian.PutUint64(f[1:], tw.stats.Records)
	binary.LittleEndian.PutUint64(f[9:], tw.payloadBytes())
	binary.LittleEndian.PutUint32(f[17:], crc32.Checksum(f[1:17], traceCRCTable))
	if _, err := tw.bw.Write(f[:]); err != nil {
		return tw.fail(err)
	}
	tw.stats.Bytes += uint64(len(f))
	if err := tw.bw.Flush(); err != nil {
		return tw.fail(err)
	}
	return nil
}

// payloadBytes is the byte total the footer commits to: everything
// emitted after the header, excluding the footer itself.
func (tw *TraceWriter) payloadBytes() uint64 { return tw.stats.Bytes - 16 }

func (tw *TraceWriter) fail(err error) error {
	tw.err = err
	return err
}

// TraceReader iterates the records of a capture file in O(1) memory. It
// reads both format versions: v1 (fixed-size records, count in header)
// and v2 (length-delimited, footer). For v2 a truncated file — one that
// ends mid-record or without a verifiable footer — yields its valid
// prefix, after which Next returns io.EOF and Truncated reports true.
type TraceReader struct {
	br        *bufio.Reader
	version   int
	remaining uint64 // v1: records left per the header count
	payload   []byte // reused record scratch
	v1Frame   []byte // reused v1 header scratch
	records   uint64
	bytes     uint64 // v2: payload bytes consumed after the header
	truncated bool
	done      bool
	err       error
}

// NewTraceReader parses the file header and returns an iterator over the
// records. It fails with ErrBadTraceFile when the header is not a
// capture header of a supported version.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTraceFile)
	}
	tr := &TraceReader{br: br, payload: make([]byte, 0, 128)}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case traceVersion:
		tr.version = traceVersion
		n := binary.LittleEndian.Uint64(hdr[8:])
		if n > 1<<32 {
			return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTraceFile, n)
		}
		tr.remaining = n
		tr.v1Frame = make([]byte, phy.HeaderSize)
	case traceVersion2:
		tr.version = traceVersion2
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTraceFile, v)
	}
	return tr, nil
}

// Version reports the format version of the file being read.
func (tr *TraceReader) Version() int { return tr.version }

// Records reports how many records have been returned so far.
func (tr *TraceReader) Records() uint64 { return tr.records }

// Truncated reports whether the stream ended without a verifiable
// footer — the capture was cut short and Next returned the recovered
// prefix. Only meaningful after Next has returned io.EOF.
func (tr *TraceReader) Truncated() bool { return tr.truncated }

// Next returns the next observation. It returns io.EOF at the end of
// the capture (including the recovered end of a truncated v2 file) and
// ErrBadTraceFile on corruption.
func (tr *TraceReader) Next() (Observation, error) {
	if tr.err != nil {
		return Observation{}, tr.err
	}
	if tr.done {
		return Observation{}, io.EOF
	}
	var o Observation
	var err error
	if tr.version == traceVersion {
		o, err = tr.nextV1()
	} else {
		o, err = tr.nextV2()
	}
	if err != nil {
		tr.done = true
		if err != io.EOF {
			tr.err = err
		}
		return Observation{}, err
	}
	tr.records++
	return o, nil
}

func (tr *TraceReader) nextV1() (Observation, error) {
	if tr.remaining == 0 {
		return Observation{}, io.EOF
	}
	i := tr.records
	if _, err := io.ReadFull(tr.br, tr.v1Frame); err != nil {
		return Observation{}, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, i, err)
	}
	f, err := phy.UnmarshalHeader(tr.v1Frame)
	if err != nil {
		return Observation{}, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, i, err)
	}
	var annex [annexSize]byte
	if _, err := io.ReadFull(tr.br, annex[:]); err != nil {
		return Observation{}, fmt.Errorf("%w: record %d annex: %v", ErrBadTraceFile, i, err)
	}
	o := Observation{
		Type:     f.Type,
		Src:      f.Src,
		Meta:     f.Meta,
		MPDUs:    f.MPDUs,
		Start:    sim.Time(binary.LittleEndian.Uint64(annex[0:])),
		End:      sim.Time(binary.LittleEndian.Uint64(annex[8:])),
		PowerDBm: math.Float64frombits(binary.LittleEndian.Uint64(annex[16:])),
		Retry:    annex[24]&annexRetry != 0,
		Collided: annex[24]&annexCollided != 0,
	}
	if err := checkObservation(o); err != nil {
		return Observation{}, fmt.Errorf("%w: record %d annex: %v", ErrBadTraceFile, i, err)
	}
	o.AmplitudeV = AmplitudeFromPower(o.PowerDBm)
	tr.remaining--
	return o, nil
}

func (tr *TraceReader) nextV2() (Observation, error) {
	length, err := binary.ReadUvarint(tr.br)
	if err != nil {
		// The file ends at (or inside) a record boundary with no
		// footer: a crashed capture. Recover the prefix.
		tr.truncated = true
		return Observation{}, io.EOF
	}
	if length == 0 {
		return Observation{}, tr.readFooter()
	}
	if length > maxRecordLen {
		return Observation{}, fmt.Errorf("%w: record %d: implausible length %d", ErrBadTraceFile, tr.records, length)
	}
	if cap(tr.payload) < int(length)+4 {
		tr.payload = make([]byte, length+4)
	}
	// Payload and trailing checksum in one read, into the reused buffer.
	pc := tr.payload[:length+4]
	if _, err := io.ReadFull(tr.br, pc); err != nil {
		tr.truncated = true
		return Observation{}, io.EOF
	}
	p := pc[:length]
	if binary.LittleEndian.Uint32(pc[length:]) != crc32.Checksum(p, traceCRCTable) {
		// A checksum failure on the very last record is the torn tail
		// of a crashed capture; anywhere else it is corruption.
		if _, err := tr.br.Peek(1); err != nil {
			tr.truncated = true
			return Observation{}, io.EOF
		}
		return Observation{}, fmt.Errorf("%w: record %d: checksum mismatch", ErrBadTraceFile, tr.records)
	}
	o, err := decodeRecord(p)
	if err != nil {
		return Observation{}, fmt.Errorf("%w: record %d: %v", ErrBadTraceFile, tr.records, err)
	}
	tr.bytes += uint64(uvarintLen(length) + int(length) + 4)
	return o, nil
}

// readFooter validates the end-of-capture footer. An unverifiable footer
// (short, or checksum mismatch — e.g. a preallocated file whose tail is
// zeros) counts as truncation; a verified footer whose record count
// disagrees with the records read is corruption.
func (tr *TraceReader) readFooter() error {
	var f [20]byte
	if _, err := io.ReadFull(tr.br, f[:]); err != nil {
		tr.truncated = true
		return io.EOF
	}
	if binary.LittleEndian.Uint32(f[16:]) != crc32.Checksum(f[:16], traceCRCTable) {
		tr.truncated = true
		return io.EOF
	}
	count := binary.LittleEndian.Uint64(f[0:])
	payloadBytes := binary.LittleEndian.Uint64(f[8:])
	if count != tr.records {
		return fmt.Errorf("%w: footer count %d, read %d records", ErrBadTraceFile, count, tr.records)
	}
	if payloadBytes != tr.bytes {
		return fmt.Errorf("%w: footer payload %d bytes, read %d", ErrBadTraceFile, payloadBytes, tr.bytes)
	}
	if _, err := tr.br.Peek(1); err == nil {
		return fmt.Errorf("%w: data after footer", ErrBadTraceFile)
	}
	return io.EOF
}

// decodeRecord parses and validates one v2 record payload.
func decodeRecord(p []byte) (Observation, error) {
	var o Observation
	var fields [6]uint64
	for i := range fields {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return o, fmt.Errorf("malformed payload")
		}
		fields[i] = v
		p = p[n:]
	}
	typ, src, mpdus, meta, start, end := fields[0], fields[1], fields[2], fields[3], fields[4], fields[5]
	if len(p) != 9 {
		return o, fmt.Errorf("malformed payload")
	}
	o.Type = phy.FrameType(typ)
	o.Src = int(src)
	o.MPDUs = int(mpdus)
	o.Meta = int(meta)
	o.Start = sim.Time(start)
	o.End = sim.Time(end)
	o.PowerDBm = math.Float64frombits(binary.LittleEndian.Uint64(p))
	o.Retry = p[8]&recRetry != 0
	o.Collided = p[8]&recCollided != 0
	if typ > maxFieldValue || src > maxFieldValue || mpdus > maxFieldValue || meta > maxFieldValue ||
		start > math.MaxInt64 || end > math.MaxInt64 {
		return o, fmt.Errorf("field out of range")
	}
	if err := checkObservation(o); err != nil {
		return o, err
	}
	o.AmplitudeV = AmplitudeFromPower(o.PowerDBm)
	return o, nil
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
