package sniffer

import (
	"math"

	"repro/internal/antenna"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/sim"
)

// AngularProfile is the directional energy measurement of Figs. 18–20:
// received power as a function of the horn's pointing direction at one
// location.
type AngularProfile struct {
	// AnglesRad holds the pointing directions (global frame).
	AnglesRad []float64
	// PowerDBm holds the measured power per direction (-Inf when nothing
	// was received).
	PowerDBm []float64
}

// PeakAngle returns the direction of maximum incident energy.
func (p AngularProfile) PeakAngle() float64 {
	best, bestA := math.Inf(-1), 0.0
	for i, v := range p.PowerDBm {
		if v > best {
			best = v
			bestA = p.AnglesRad[i]
		}
	}
	return bestA
}

// PeakDBm returns the maximum incident power.
func (p AngularProfile) PeakDBm() float64 {
	best := math.Inf(-1)
	for _, v := range p.PowerDBm {
		if v > best {
			best = v
		}
	}
	return best
}

// Normalized returns per-direction power relative to the peak in dB
// (0 at the peak), the scale of the paper's polar plots.
func (p AngularProfile) Normalized() []float64 {
	peak := p.PeakDBm()
	out := make([]float64, len(p.PowerDBm))
	for i, v := range p.PowerDBm {
		out[i] = v - peak
	}
	return out
}

// Lobes returns the directions whose normalized power exceeds
// thresholdDB (e.g. -8 dB, the paper's plot floor) and are local maxima
// — the "lobes" the paper counts to detect reflections.
func (p AngularProfile) Lobes(thresholdDB float64) []float64 {
	norm := p.Normalized()
	n := len(norm)
	var lobes []float64
	for i := 0; i < n; i++ {
		prev := norm[(i-1+n)%n]
		next := norm[(i+1)%n]
		if norm[i] >= thresholdDB && norm[i] >= prev && norm[i] > next {
			lobes = append(lobes, p.AnglesRad[i])
		}
	}
	return lobes
}

// HasLobeTowards reports whether some lobe above thresholdDB points
// within tolRad of the given direction — how the paper attributes
// angular-profile lobes to devices or walls.
func (p AngularProfile) HasLobeTowards(dir float64, tolRad, thresholdDB float64) bool {
	for _, l := range p.Lobes(thresholdDB) {
		if math.Abs(geom.AngleDiff(l, dir)) <= tolRad {
			return true
		}
	}
	return false
}

// MeasureAngularProfile runs the live measurement procedure of §3.2: the
// sniffer's horn is rotated through nSteps directions; at each step the
// simulation runs for dwell and the average data-frame power is
// recorded. Control frames (higher power, wider patterns) are discarded
// exactly as the paper does. The scheduler advances by nSteps×dwell.
func (s *Sniffer) MeasureAngularProfile(med *sim.Medium, nSteps int, dwell sim.Time) AngularProfile {
	horn := antenna.MeasurementHorn()
	prof := AngularProfile{
		AnglesRad: make([]float64, nSteps),
		PowerDBm:  make([]float64, nSteps),
	}
	sched := med.Sched
	for i := 0; i < nSteps; i++ {
		theta := -math.Pi + 2*math.Pi*float64(i)/float64(nSteps)
		prof.AnglesRad[i] = theta
		s.SetPattern(horn, theta)
		mark := len(s.Obs)
		sched.Run(sched.Now() + dwell)
		// Average linear power of link traffic. Unlike the beam-pattern
		// sweeps, the angular profiles integrate everything the link
		// emits — data, acknowledgements and beacons all reveal where
		// energy arrives from (the paper attributes RX-pointing lobes to
		// acknowledgements). Only the wide-pattern discovery sweeps are
		// excluded.
		sumMw, n := 0.0, 0
		for _, o := range s.Obs[mark:] {
			if o.Type == phy.FrameDiscovery {
				continue
			}
			sumMw += math.Pow(10, o.PowerDBm/10)
			n++
		}
		if n == 0 {
			prof.PowerDBm[i] = math.Inf(-1)
		} else {
			prof.PowerDBm[i] = 10 * math.Log10(sumMw/float64(n))
		}
	}
	return prof
}

// isDataClass filters to payload-bearing frames, mirroring the paper's
// "we ensure that we extract signal strength from data frames only"
// (used by the beam-pattern sweeps).
func isDataClass(o Observation) bool { return o.Type == phy.FrameData }

// SemicircleSweep reproduces the Fig. 2 outdoor rig: the device under
// test sits at center; the sniffer visits nPos equally spaced positions
// on a semicircle of the given radius spanning [startRad, startRad+π],
// dwelling at each and recording the mean data-frame power. It returns
// one power value per position (the measured transmit pattern of the
// device).
func (s *Sniffer) SemicircleSweep(med *sim.Medium, center geom.Vec2, radius float64, nPos int, dwell sim.Time) AngularProfile {
	horn := antenna.MeasurementHorn()
	prof := AngularProfile{
		AnglesRad: make([]float64, nPos),
		PowerDBm:  make([]float64, nPos),
	}
	sched := med.Sched
	for i := 0; i < nPos; i++ {
		theta := -math.Pi/2 + math.Pi*float64(i)/float64(nPos-1)
		prof.AnglesRad[i] = theta
		pos := center.Add(geom.FromPolar(radius, theta))
		s.Move(med, pos)
		// Aim back at the device under test.
		s.SetPattern(horn, geom.NormalizeAngle(theta+math.Pi))
		mark := len(s.Obs)
		sched.Run(sched.Now() + dwell)
		sumMw, n := 0.0, 0
		for _, o := range s.Obs[mark:] {
			if !isDataClass(o) {
				continue
			}
			sumMw += math.Pow(10, o.PowerDBm/10)
			n++
		}
		if n == 0 {
			prof.PowerDBm[i] = math.Inf(-1)
		} else {
			prof.PowerDBm[i] = 10 * math.Log10(sumMw/float64(n))
		}
	}
	return prof
}

// SubElementSweep measures the quasi-omni discovery patterns (Fig. 16
// method): like SemicircleSweep, but the per-position powers are split
// by discovery sub-element index, yielding one pattern per codeword.
// Returns a map from sub-element index to its measured profile.
func (s *Sniffer) SubElementSweep(med *sim.Medium, center geom.Vec2, radius float64, nPos int, dwell sim.Time) map[int]AngularProfile {
	horn := antenna.MeasurementHorn()
	sched := med.Sched
	profs := make(map[int]AngularProfile)
	ensure := func(meta int) AngularProfile {
		p, ok := profs[meta]
		if !ok {
			p = AngularProfile{
				AnglesRad: make([]float64, nPos),
				PowerDBm:  make([]float64, nPos),
			}
			for i := range p.PowerDBm {
				p.PowerDBm[i] = math.Inf(-1)
			}
			profs[meta] = p
		}
		return p
	}
	for i := 0; i < nPos; i++ {
		theta := -math.Pi/2 + math.Pi*float64(i)/float64(nPos-1)
		pos := center.Add(geom.FromPolar(radius, theta))
		s.Move(med, pos)
		s.SetPattern(horn, geom.NormalizeAngle(theta+math.Pi))
		mark := len(s.Obs)
		sched.Run(sched.Now() + dwell)
		sums := map[int]float64{}
		counts := map[int]int{}
		for _, o := range s.Obs[mark:] {
			if o.Type != phy.FrameDiscovery {
				continue
			}
			sums[o.Meta] += math.Pow(10, o.PowerDBm/10)
			counts[o.Meta]++
		}
		for meta, sum := range sums {
			p := ensure(meta)
			p.AnglesRad[i] = theta
			p.PowerDBm[i] = 10 * math.Log10(sum/float64(counts[meta]))
			profs[meta] = p
		}
		for meta := range profs {
			p := profs[meta]
			p.AnglesRad[i] = theta
			profs[meta] = p
		}
	}
	return profs
}
