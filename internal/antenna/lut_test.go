package antenna

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rf"
)

// forceLUT drives enough GainDBi queries through the array to cross the
// build threshold, returning with the table in place.
func forceLUT(t *testing.T, a *PhasedArray) {
	t.Helper()
	for i := 0; i <= lutBuildThreshold+1; i++ {
		a.GainDBi(0.1)
	}
	if a.lut == nil {
		t.Fatal("LUT not built after threshold queries")
	}
}

// binCenter returns the angle at the center of the LUT bin that GainDBi
// resolves theta into.
func binCenter(theta float64) float64 {
	t := (geom.NormalizeAngle(theta) + math.Pi) / (2 * math.Pi) * lutBins
	i := int(t)
	if i < 0 {
		i = 0
	}
	if i >= lutBins {
		i = lutBins - 1
	}
	return -math.Pi + 2*math.Pi*(float64(i)+0.5)/lutBins
}

// Property: once the LUT is hot, GainDBi(θ) must equal the exact pattern
// evaluated at the center of θ's bin — for any θ, including values far
// outside [-π, π]. This pins the indexing and wrap-around math.
func TestLUTIndexingProperty(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0.35)
	forceLUT(t, a)
	prop := func(raw float64) bool {
		theta := math.Mod(raw, 12) // exercise multiple wraps
		got := a.GainDBi(theta)
		want := a.gainExact(binCenter(theta))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the tabulated pattern of an imperfect, steered array never
// strays more than a fraction of a dB from the exact pattern away from
// nulls — the LUT is a cache, not an approximation the physics can feel.
func TestLUTAccuracyAwayFromNulls(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.ApplyImperfections(7, 1.0, 20)
	a.Steer(-0.6)
	forceLUT(t, a)
	checked := 0
	for i := 0; i < 2000; i++ {
		theta := -math.Pi + 2*math.Pi*float64(i)/2000
		exact := a.gainExact(theta)
		if exact < -20 { // skip nulls: unbounded slope across a bin
			continue
		}
		checked++
		if d := math.Abs(a.GainDBi(theta) - exact); d > 1.0 {
			t.Fatalf("LUT error %.2f dB at θ=%.4f (exact %.2f)", d, theta, exact)
		}
	}
	if checked < 500 {
		t.Fatalf("only %d angles above the null floor; pattern implausible", checked)
	}
}

func TestSteerInvalidatesLUT(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0)
	forceLUT(t, a)
	before := a.GainDBi(1.0)
	a.Steer(1.0)
	if a.lut != nil {
		t.Fatal("Steer left a stale LUT in place")
	}
	after := a.gainExact(1.0)
	if after <= before {
		t.Errorf("steering toward 1.0 rad did not raise gain there: %.1f -> %.1f dBi", before, after)
	}
}

func TestSetWeightsInvalidatesLUT(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	forceLUT(t, a)
	w := make([]complex128, a.N())
	for i := range w {
		w[i] = complex(0, 1)
	}
	if err := a.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if a.lut != nil {
		t.Error("SetWeights left a stale LUT in place")
	}
}

func TestApplyImperfectionsInvalidatesLUT(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	forceLUT(t, a)
	a.ApplyImperfections(3, 1.0, 20)
	if a.lut != nil {
		t.Error("ApplyImperfections left a stale LUT in place")
	}
}

// A snapshotting clone must not share mutable pattern state: steering the
// clone may not disturb the original's (tabulated) pattern.
func TestCloneLUTIndependence(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0.2)
	forceLUT(t, a)
	ref := a.GainDBi(0.2)
	c := a.Clone()
	c.Steer(-1.2)
	if got := a.GainDBi(0.2); got != ref {
		t.Errorf("steering the clone changed the original: %.3f -> %.3f dBi", ref, got)
	}
	if math.Abs(c.gainExact(-1.2)-a.gainExact(-1.2)) < 1e-9 {
		t.Error("clone did not steer independently")
	}
}
