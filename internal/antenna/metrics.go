package antenna

import (
	"math"

	"repro/internal/geom"
)

// Sample evaluates the pattern at n equally spaced angles over the full
// circle and returns (angles, gains). This mirrors the paper's semicircle
// measurement procedure (100 positions), generalized to 360°.
func Sample(p Pattern, n int) (angles, gains []float64) {
	angles = make([]float64, n)
	gains = make([]float64, n)
	for i := 0; i < n; i++ {
		a := -math.Pi + 2*math.Pi*float64(i)/float64(n)
		angles[i] = a
		gains[i] = p.GainDBi(a)
	}
	return angles, gains
}

// Metrics summarizes a measured beam pattern the way the paper discusses
// Figs. 16 and 17: peak direction and gain, half-power beam width, and
// the strongest side lobe relative to the main lobe.
type Metrics struct {
	// PeakAngle is the main-lobe direction (radians).
	PeakAngle float64
	// PeakGainDBi is the main-lobe gain.
	PeakGainDBi float64
	// HPBWDeg is the angular width over which gain stays within 3 dB of
	// the peak, in degrees.
	HPBWDeg float64
	// SideLobes lists local pattern maxima outside the main lobe, as
	// levels in dB relative to the peak (negative values; −4 means a side
	// lobe 4 dB below the main lobe). Sorted strongest first.
	SideLobes []float64
	// SideLobeAngles holds the directions of those side lobes (radians),
	// index-aligned with SideLobes.
	SideLobeAngles []float64
	// DeepGaps counts angular positions within the nominal coverage where
	// the pattern falls more than 15 dB below the peak — the "deep gaps
	// that may prevent communication" in the paper's quasi-omni patterns.
	DeepGaps int
}

// PeakSideLobeDB returns the strongest side-lobe level relative to the
// main lobe, or -Inf if the pattern has no side lobes.
func (m Metrics) PeakSideLobeDB() float64 {
	if len(m.SideLobes) == 0 {
		return math.Inf(-1)
	}
	return m.SideLobes[0]
}

// Analyze measures a pattern numerically with the given angular
// resolution (number of samples around the circle; 720 gives 0.5°).
func Analyze(p Pattern, n int) Metrics {
	angles, gains := Sample(p, n)
	m := Metrics{PeakGainDBi: math.Inf(-1)}
	peakIdx := 0
	for i, g := range gains {
		if g > m.PeakGainDBi {
			m.PeakGainDBi = g
			m.PeakAngle = angles[i]
			peakIdx = i
		}
	}

	// HPBW: walk from the peak in both directions until gain drops 3 dB.
	step := 2 * math.Pi / float64(n)
	half := 0
	for d := 1; d < n/2; d++ {
		if gains[(peakIdx+d)%n] < m.PeakGainDBi-3 {
			break
		}
		half++
	}
	width := float64(half)
	for d := 1; d < n/2; d++ {
		if gains[(peakIdx-d+n)%n] < m.PeakGainDBi-3 {
			break
		}
		width++
	}
	m.HPBWDeg = geom.Deg((width + 1) * step)

	// Main-lobe extent: from the peak outward until the first local
	// minimum at least 3 dB down; side lobes live beyond it.
	mainLo, mainHi := mainLobeExtent(gains, peakIdx)

	inMain := func(i int) bool {
		// Indices are circular; the main lobe spans [mainLo, mainHi]
		// possibly wrapping.
		if mainLo <= mainHi {
			return i >= mainLo && i <= mainHi
		}
		return i >= mainLo || i <= mainHi
	}

	// Side lobes: local maxima outside the main lobe that rise at least
	// 1 dB above their surrounding minima and sit above the noise floor.
	for i := 0; i < n; i++ {
		if inMain(i) {
			continue
		}
		prev := gains[(i-1+n)%n]
		next := gains[(i+1)%n]
		g := gains[i]
		if g <= prev || g < next {
			continue
		}
		if g <= backLobeFloorDBi+1 {
			continue
		}
		rel := g - m.PeakGainDBi
		if rel < -30 {
			continue
		}
		m.SideLobes = append(m.SideLobes, rel)
		m.SideLobeAngles = append(m.SideLobeAngles, angles[i])
	}
	sortSideLobes(m.SideLobes, m.SideLobeAngles)

	// Deep gaps within ±90° of the peak.
	for i, g := range gains {
		if math.Abs(geom.AngleDiff(m.PeakAngle, angles[i])) <= math.Pi/2 && g < m.PeakGainDBi-15 {
			m.DeepGaps++
		}
	}
	return m
}

// mainLobeExtent walks outward from the peak to the first local minima
// that are at least 3 dB below the peak, returning circular indices.
func mainLobeExtent(gains []float64, peak int) (lo, hi int) {
	n := len(gains)
	hi = peak
	for d := 1; d < n/2; d++ {
		i := (peak + d) % n
		next := gains[(i+1)%n]
		if gains[i] < gains[peak]-3 && next >= gains[i] {
			break
		}
		hi = i
	}
	lo = peak
	for d := 1; d < n/2; d++ {
		i := (peak - d + n) % n
		prev := gains[(i-1+n)%n]
		if gains[i] < gains[peak]-3 && prev >= gains[i] {
			break
		}
		lo = i
	}
	return lo, hi
}

func sortSideLobes(levels, angles []float64) {
	// Insertion sort, strongest (largest, i.e. closest to 0) first; side
	// lobe lists are short.
	for i := 1; i < len(levels); i++ {
		l, a := levels[i], angles[i]
		j := i - 1
		for j >= 0 && levels[j] < l {
			levels[j+1] = levels[j]
			angles[j+1] = angles[j]
			j--
		}
		levels[j+1] = l
		angles[j+1] = a
	}
}
