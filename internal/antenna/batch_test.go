package antenna

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/stats"
)

// The float32 linear slab must be the exact image of the dB LUT it is
// derived from, entry for entry, with MaxDB its peak.
func TestLinearTableMatchesLUT(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0.4)
	tab := a.LinearTable()
	if a.lut == nil {
		t.Fatal("LinearTable did not force the dB LUT")
	}
	if len(tab.Lin) != len(a.lut) {
		t.Fatalf("slab has %d bins, LUT %d", len(tab.Lin), len(a.lut))
	}
	peak := math.Inf(-1)
	for i, db := range a.lut {
		if tab.Lin[i] != float32(rf.DbToLin(db)) {
			t.Fatalf("bin %d: slab %v, want float32(10^(%v/10))", i, tab.Lin[i], db)
		}
		if db > peak {
			peak = db
		}
	}
	if tab.MaxDB != peak {
		t.Errorf("MaxDB = %v, want %v", tab.MaxDB, peak)
	}
}

// LinearTableIfHot must stay nil until the scalar path has crossed its
// lazy tabulation threshold — the batch kernels must not change when a
// pattern pays for its LUT build.
func TestLinearTableIfHotLazy(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(-0.2)
	if tab := a.LinearTableIfHot(); tab != nil {
		t.Fatal("cold array published a table")
	}
	forceLUT(t, a)
	if tab := a.LinearTableIfHot(); tab == nil {
		t.Fatal("hot array still hides its table")
	}
}

// Mutating the weights must drop the linear slab together with the dB
// LUT (the slab is derived state; a stale one would freeze the old beam
// in every batch kernel).
func TestSteerInvalidatesLinearTable(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.LinearTable()
	if a.linTab == nil {
		t.Fatal("slab not cached")
	}
	a.Steer(1.1)
	if a.linTab != nil {
		t.Error("Steer left a stale linear slab")
	}
}

// Two codebooks of the same model and seed fingerprint identically, so
// the same sector on two radios must share one slab through the
// process-wide cache, mirroring the dB LUT sharing. Hand-steered
// (unfingerprinted) arrays must each keep a private slab.
func TestLinearTableShared(t *testing.T) {
	_, cb1 := D5000Codebook(rf.FreqChannel2Hz, 99)
	_, cb2 := D5000Codebook(rf.FreqChannel2Hz, 99)
	a1 := cb1.Sectors[3].Pattern.(*PhasedArray)
	a2 := cb2.Sectors[3].Pattern.(*PhasedArray)
	if a1 == a2 {
		t.Fatal("test needs distinct array instances")
	}
	if a1.LinearTable() != a2.LinearTable() {
		t.Error("fingerprinted twins built distinct slabs")
	}

	p1 := NewD5000Array(rf.FreqChannel2Hz)
	p1.Steer(0.7)
	p2 := NewD5000Array(rf.FreqChannel2Hz)
	p2.Steer(0.7)
	if p1.LinearTable() == p2.LinearTable() {
		t.Error("unfingerprinted arrays unexpectedly shared a slab")
	}
}

// The bulk codebook sweep must agree with the scalar per-(sector,angle)
// evaluation bit for bit: both read the same dB LUT bins through the
// same indexing and the same float32 conversion.
func TestSweepSectorGainsParity(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	cb := NewCodebook(a, 12, 60, 4, 3)
	rng := stats.NewRNG(10)
	thetas := make([]float64, 33)
	for i := range thetas {
		thetas[i] = rng.Range(-4, 4)
	}
	dst := make([]float32, len(cb.Sectors)*len(thetas))
	cb.SweepSectorGainsDBi(dst, thetas)
	for s, sec := range cb.Sectors {
		for k, th := range thetas {
			want := float32(sec.Pattern.GainDBi(th))
			if got := dst[s*len(thetas)+k]; got != want {
				t.Fatalf("sector %d θ=%.3f: batch %v, scalar %v", s, th, got, want)
			}
		}
	}
}

// Metamorphic sector relabeling: sweeping a codebook whose sectors are a
// permutation of the original must permute the output rows exactly.
func TestSweepSectorPermutation(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	cb := NewCodebook(a, 9, 55, 2, 4)
	rng := stats.NewRNG(11)
	thetas := make([]float64, 17)
	for i := range thetas {
		thetas[i] = rng.Range(-math.Pi, math.Pi)
	}
	n := len(cb.Sectors)
	dst := make([]float32, n*len(thetas))
	cb.SweepSectorGainsDBi(dst, thetas)

	perm := rng.Perm(n)
	relabeled := &Codebook{QuasiOmni: cb.QuasiOmni}
	for _, p := range perm {
		relabeled.Sectors = append(relabeled.Sectors, cb.Sectors[p])
	}
	dst2 := make([]float32, n*len(thetas))
	relabeled.SweepSectorGainsDBi(dst2, thetas)
	for i, p := range perm {
		for k := range thetas {
			if dst2[i*len(thetas)+k] != dst[p*len(thetas)+k] {
				t.Fatalf("row %d (was %d), col %d: %v != %v",
					i, p, k, dst2[i*len(thetas)+k], dst[p*len(thetas)+k])
			}
		}
	}
}

// A codebook sweep into caller storage must not allocate once every
// sector's LUT is built.
func TestSweepSectorGainsZeroAlloc(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	cb := NewCodebook(a, 8, 60, 2, 5)
	thetas := []float64{-2.1, -0.5, 0, 0.4, 1.7, 3.0}
	dst := make([]float32, len(cb.Sectors)*len(thetas))
	cb.SweepSectorGainsDBi(dst, thetas) // warm: builds every LUT
	if avg := testing.AllocsPerRun(200, func() {
		cb.SweepSectorGainsDBi(dst, thetas)
	}); avg != 0 {
		t.Errorf("codebook sweep allocates %.1f/op, want 0", avg)
	}
}

// SectorRefs must produce refs whose scalar closure matches the mounted
// pattern and whose poll stays nil-returning until the pattern is hot.
func TestSectorRefsColdThenHot(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	cb := NewCodebook(a, 5, 50, 2, 6)
	bore := geom.Rad(30)
	refs := cb.SectorRefs(nil, bore)
	if len(refs) != len(cb.Sectors) {
		t.Fatalf("%d refs for %d sectors", len(refs), len(cb.Sectors))
	}
	for s := range refs {
		r := &refs[s]
		if r.Bore != bore {
			t.Fatalf("sector %d: bore %v", s, r.Bore)
		}
		want := Oriented{Pattern: cb.Sectors[s].Pattern, Boresight: bore}.GainFunc()(0.9)
		if got := r.Gain(0.9); got != want {
			t.Fatalf("sector %d: ref gain %v, oriented gain %v", s, got, want)
		}
	}
	// The probes answer only after the underlying pattern crosses the
	// scalar threshold.
	if refs[0].Table() != nil {
		t.Fatal("cold sector published a table through its ref")
	}
	arr := cb.Sectors[0].Pattern.(*PhasedArray)
	forceLUT(t, arr)
	if refs[0].Table() == nil {
		t.Fatal("hot sector's ref still has no table")
	}
}

// BenchmarkCodebookSweepBatch is the codebook-sweep batch microbenchmark:
// all sectors × a ray bundle's worth of angles in one call.
func BenchmarkCodebookSweepBatch(b *testing.B) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	cb := NewCodebook(a, 22, 60, 4, 7)
	rng := stats.NewRNG(12)
	thetas := make([]float64, 8)
	for i := range thetas {
		thetas[i] = rng.Range(-math.Pi, math.Pi)
	}
	dst := make([]float32, len(cb.Sectors)*len(thetas))
	cb.SweepSectorGainsDBi(dst, thetas)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.SweepSectorGainsDBi(dst, thetas)
	}
}
