package antenna

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rf"
)

func TestIsotropic(t *testing.T) {
	var iso Isotropic
	for _, a := range []float64{-3, -1, 0, 1, 3} {
		if iso.GainDBi(a) != 0 {
			t.Fatalf("Isotropic gain at %v != 0", a)
		}
	}
}

func TestHornShape(t *testing.T) {
	h := MeasurementHorn()
	if g := h.GainDBi(0); g != 25 {
		t.Errorf("peak = %v", g)
	}
	// 3 dB down at half the HPBW off boresight.
	half := geom.Rad(h.HPBWDeg / 2)
	if g := h.GainDBi(half); math.Abs(g-22) > 0.01 {
		t.Errorf("gain at HPBW/2 = %v, want 22", g)
	}
	// Far off boresight: floored.
	if g := h.GainDBi(math.Pi); g != backLobeFloorDBi {
		t.Errorf("back lobe = %v", g)
	}
	// Symmetric.
	if h.GainDBi(0.2) != h.GainDBi(-0.2) {
		t.Error("horn pattern should be symmetric")
	}
}

func TestHornMonotoneOffBoresight(t *testing.T) {
	h := MeasurementHorn()
	prev := math.Inf(1)
	for d := 0.0; d < math.Pi; d += 0.01 {
		g := h.GainDBi(d)
		if g > prev+1e-12 {
			t.Fatalf("gain increased at %v", d)
		}
		prev = g
	}
}

func TestOpenWaveguideWide(t *testing.T) {
	ow := OpenWaveguide()
	horn := MeasurementHorn()
	// The open waveguide must be far less directive than the horn: at 45°
	// off boresight it still hears well.
	if ow.GainDBi(geom.Rad(45)) < horn.GainDBi(geom.Rad(45))+5 {
		t.Error("open waveguide should dominate horn at wide angles")
	}
}

func TestOriented(t *testing.T) {
	h := Horn{PeakGainDBi: 20, HPBWDeg: 20}
	o := Oriented{Pattern: h, Boresight: math.Pi / 2}
	if g := o.GainDBi(math.Pi / 2); g != 20 {
		t.Errorf("peak via orientation = %v", g)
	}
	if o.GainDBi(0) >= 10 {
		t.Error("off-axis should be attenuated")
	}
	f := o.GainFunc()
	if f(math.Pi/2) != 20 {
		t.Error("GainFunc mismatch")
	}
}

func TestURAGeometry(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	if a.N() != 16 {
		t.Fatalf("N = %d", a.N())
	}
	wl := rf.Wavelength(rf.FreqChannel2Hz)
	// Extent of the 8-column steering axis (local Y): 7 · λ/2.
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, e := range a.Elements {
		minY = math.Min(minY, e.Y)
		maxY = math.Max(maxY, e.Y)
	}
	if math.Abs((maxY-minY)-3.5*wl) > 1e-12 {
		t.Errorf("aperture = %v, want %v", maxY-minY, 3.5*wl)
	}
}

func TestArrayPeakGain(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.PhaseBits = 0 // ideal phases for this check
	a.Steer(0)
	got := a.GainDBi(0)
	want := a.ElementGainDBi + 10*math.Log10(16)
	if math.Abs(got-want) > 0.1 {
		t.Errorf("broadside gain = %v, want %v", got, want)
	}
}

func TestSteeredBeamPointsWhereTold(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	for _, deg := range []float64{-45, -20, 0, 20, 45} {
		a.Steer(geom.Rad(deg))
		m := Analyze(a, 720)
		if math.Abs(geom.Deg(m.PeakAngle)-deg) > 6 {
			t.Errorf("steered %v°, peak at %v°", deg, geom.Deg(m.PeakAngle))
		}
	}
}

func TestDirectionalHPBWUnder20Deg(t *testing.T) {
	// Paper, Fig. 17: data-transmission patterns have HPBW below 20°.
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0)
	m := Analyze(a, 1440)
	if m.HPBWDeg >= 20 || m.HPBWDeg < 5 {
		t.Errorf("HPBW = %v°, want ~13° (below 20°)", m.HPBWDeg)
	}
}

func TestQuantizationRaisesSideLobes(t *testing.T) {
	ideal := NewD5000Array(rf.FreqChannel2Hz)
	ideal.PhaseBits = 0
	coarse := NewD5000Array(rf.FreqChannel2Hz)
	coarse.PhaseBits = 2
	// Compare off-grid steering where quantization error is nonzero.
	theta := geom.Rad(23)
	ideal.Steer(theta)
	coarse.Steer(theta)
	mi := Analyze(ideal, 1440)
	mc := Analyze(coarse, 1440)
	if mc.PeakSideLobeDB() <= mi.PeakSideLobeDB() {
		t.Errorf("2-bit side lobe %v should exceed ideal %v",
			mc.PeakSideLobeDB(), mi.PeakSideLobeDB())
	}
}

func TestConsumerSideLobesMatchPaper(t *testing.T) {
	// Paper: side lobes in the −4 to −6 dB range for aligned links.
	// Across the codebook the strongest side lobe of the realized
	// patterns should reach that regime (it depends on the sector).
	_, cb := D5000Codebook(rf.FreqChannel2Hz, 1)
	worst := math.Inf(-1)
	for _, s := range cb.Sectors {
		if math.Abs(s.SteerDeg) > 40 {
			continue // boundary sectors analyzed separately
		}
		m := Analyze(s.Pattern, 1440)
		if psl := m.PeakSideLobeDB(); psl > worst {
			worst = psl
		}
	}
	if worst < -9 || worst > -0.5 {
		t.Errorf("strongest in-coverage side lobe = %.1f dB, want roughly −1..−9 dB", worst)
	}
}

func TestBoundarySteeringDegrades(t *testing.T) {
	// Paper, Fig. 17 (rotated 70°): steering to the boundary of the
	// transmission area loses on the order of 10 dB of gain and raises
	// side lobes to as strong as −1 dB.
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0)
	center := Analyze(a, 1440)
	a.Steer(geom.Rad(70))
	edge := Analyze(a, 1440)
	lossDB := center.PeakGainDBi - edge.PeakGainDBi
	if lossDB < 4 || lossDB > 16 {
		t.Errorf("boundary scan loss = %.1f dB, want substantial (≈10 dB)", lossDB)
	}
	if edge.PeakSideLobeDB() < center.PeakSideLobeDB() {
		t.Errorf("boundary side lobes (%.1f) should be stronger than center (%.1f)",
			edge.PeakSideLobeDB(), center.PeakSideLobeDB())
	}
	if edge.PeakSideLobeDB() < -6 {
		t.Errorf("boundary peak side lobe = %.1f dB, paper sees up to −1 dB", edge.PeakSideLobeDB())
	}
}

func TestQuasiOmniPatterns(t *testing.T) {
	// Paper, Fig. 16: quasi-omni patterns are wide (HPBW up to 60°) but
	// contain deep gaps.
	_, cb := D5000Codebook(rf.FreqChannel2Hz, 7)
	if len(cb.QuasiOmni) != 32 {
		t.Fatalf("quasi-omni count = %d, want 32", len(cb.QuasiOmni))
	}
	wide, gapped := 0, 0
	for _, q := range cb.QuasiOmni {
		m := Analyze(q, 720)
		if m.HPBWDeg > 25 {
			wide++
		}
		if m.DeepGaps > 0 {
			gapped++
		}
		// Quasi-omni peak gain must be far below a directional sector's.
		if m.PeakGainDBi > 14 {
			t.Errorf("quasi-omni peak %.1f dBi too directive", m.PeakGainDBi)
		}
	}
	if wide < len(cb.QuasiOmni)/3 {
		t.Errorf("only %d/32 quasi-omni patterns are wide", wide)
	}
	if gapped < len(cb.QuasiOmni)/2 {
		t.Errorf("only %d/32 quasi-omni patterns have deep gaps", gapped)
	}
}

func TestWiHDWiderThanD5000(t *testing.T) {
	// Section 3.2: "the WiHD system transmits with a much wider antenna
	// pattern than the D5000".
	_, dcb := D5000Codebook(rf.FreqChannel2Hz, 3)
	_, wcb := WiHDCodebook(rf.FreqChannel2Hz, 3)
	davg, wavg := 0.0, 0.0
	for _, s := range dcb.Sectors {
		davg += Analyze(s.Pattern, 720).HPBWDeg
	}
	davg /= float64(len(dcb.Sectors))
	for _, s := range wcb.Sectors {
		wavg += Analyze(s.Pattern, 720).HPBWDeg
	}
	wavg /= float64(len(wcb.Sectors))
	if wavg <= davg {
		t.Errorf("WiHD HPBW %v° should exceed D5000 %v°", wavg, davg)
	}
}

func TestBestSector(t *testing.T) {
	_, cb := D5000Codebook(rf.FreqChannel2Hz, 5)
	for _, deg := range []float64{-50, -10, 0, 30, 60} {
		s := cb.BestSector(geom.Rad(deg))
		if math.Abs(s.SteerDeg-deg) > 15 {
			t.Errorf("BestSector(%v°) picked sector at %v°", deg, s.SteerDeg)
		}
	}
}

func TestQuantizePhase(t *testing.T) {
	// 2 bits: states at 0, ±90, 180. 50° rounds to 90°, 40° to 0°.
	if got := QuantizePhase(geom.Rad(50), 2); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("50° quantized to %v°", geom.Deg(got))
	}
	if got := QuantizePhase(geom.Rad(40), 2); got != 0 {
		t.Errorf("40° quantized to %v°", geom.Deg(got))
	}
	if got := QuantizePhase(geom.Rad(40), 0); got != geom.Rad(40) {
		t.Error("0 bits should be identity")
	}
	f := func(ph float64, bits uint8) bool {
		if math.IsNaN(ph) || math.IsInf(ph, 0) || math.Abs(ph) > 100 {
			return true
		}
		b := int(bits%4) + 1
		q := QuantizePhase(ph, b)
		step := 2 * math.Pi / float64(uint(1)<<uint(b))
		return math.Abs(q-ph) <= step/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetWeightsLengthCheck(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	if err := a.SetWeights(make([]complex128, 3)); err == nil {
		t.Error("mismatched weight count should error")
	}
	if err := a.SetWeights(make([]complex128, 16)); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0)
	b := a.Clone()
	b.Steer(geom.Rad(40))
	if a.GainDBi(0) == b.GainDBi(0) {
		t.Error("clone shares weights with original")
	}
}

func TestSampleShape(t *testing.T) {
	angles, gains := Sample(Isotropic{}, 100)
	if len(angles) != 100 || len(gains) != 100 {
		t.Fatal("wrong sample count")
	}
	if angles[0] != -math.Pi {
		t.Errorf("first angle = %v", angles[0])
	}
	for _, g := range gains {
		if g != 0 {
			t.Fatal("isotropic sample nonzero")
		}
	}
}

func TestAnalyzeHornMetrics(t *testing.T) {
	h := Horn{PeakGainDBi: 20, HPBWDeg: 30}
	m := Analyze(h, 1440)
	if math.Abs(m.PeakGainDBi-20) > 0.05 {
		t.Errorf("peak = %v", m.PeakGainDBi)
	}
	if math.Abs(m.HPBWDeg-30) > 2 {
		t.Errorf("HPBW = %v, want ≈30", m.HPBWDeg)
	}
	if math.Abs(m.PeakAngle) > 0.01 {
		t.Errorf("peak angle = %v", m.PeakAngle)
	}
	// A clean Gaussian horn has no side lobes above the floor.
	if psl := m.PeakSideLobeDB(); !math.IsInf(psl, -1) && psl > -20 {
		t.Errorf("horn should have no strong side lobes, got %v", psl)
	}
}

func TestIrregular24Deterministic(t *testing.T) {
	a := NewIrregular24(rf.FreqChannel2Hz, 9)
	b := NewIrregular24(rf.FreqChannel2Hz, 9)
	if a.N() != 24 || b.N() != 24 {
		t.Fatal("wrong element count")
	}
	for i := range a.Elements {
		if a.Elements[i] != b.Elements[i] {
			t.Fatal("same seed should give same layout")
		}
	}
	c := NewIrregular24(rf.FreqChannel2Hz, 10)
	same := true
	for i := range a.Elements {
		if a.Elements[i] != c.Elements[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different layouts")
	}
}

func TestElementPatternBackHemisphere(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(0)
	// Gain behind the ground plane must be far below the main lobe.
	front := a.GainDBi(0)
	back := a.GainDBi(math.Pi)
	if front-back < 15 {
		t.Errorf("front-to-back = %v dB, want ≥15", front-back)
	}
}

func TestOrientedShiftProperty(t *testing.T) {
	// Oriented is a pure rotation: the oriented gain at boresight+delta
	// equals the local pattern gain at delta, for any boresight.
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(geom.Rad(17))
	f := func(boresight, delta float64) bool {
		if math.IsNaN(boresight) || math.IsNaN(delta) || math.Abs(boresight) > 50 || math.Abs(delta) > 50 {
			return true
		}
		o := Oriented{Pattern: a, Boresight: boresight}
		want := a.GainDBi(geom.NormalizeAngle(delta))
		got := o.GainDBi(boresight + delta)
		return math.Abs(want-got) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGainBoundedProperty(t *testing.T) {
	// Any realized pattern stays within physical bounds: never below the
	// floor, never above element gain + 10·log10(N) + a small epsilon.
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.ApplyImperfections(7, 1.0, 20)
	f := func(steer, theta float64) bool {
		if math.IsNaN(steer) || math.IsNaN(theta) || math.Abs(steer) > 10 || math.Abs(theta) > 10 {
			return true
		}
		a.Steer(steer)
		g := a.GainDBi(theta)
		upper := a.ElementGainDBi + 10*math.Log10(float64(a.N())) + 3 // error variance slack
		return g >= backLobeFloorDBi-1e-9 && g <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
