package antenna

import (
	"math"
	"testing"

	"repro/internal/rf"
)

// sectorArray extracts the PhasedArray behind a codebook sector.
func sectorArray(t *testing.T, cb *Codebook, i int) *PhasedArray {
	t.Helper()
	a, ok := cb.Sectors[i].Pattern.(*PhasedArray)
	if !ok {
		t.Fatalf("sector %d pattern is %T, not *PhasedArray", i, cb.Sectors[i].Pattern)
	}
	return a
}

// Two codebooks built from the same model parameters must serve their
// hot sector gains from one process-wide table, and that table must
// still be the exact pattern (the cache changes ownership, not values).
func TestCodebookSectorLUTsShared(t *testing.T) {
	_, cb1 := D5000Codebook(rf.FreqChannel2Hz, 77)
	_, cb2 := D5000Codebook(rf.FreqChannel2Hz, 77)
	a1, a2 := sectorArray(t, cb1, 5), sectorArray(t, cb2, 5)
	if a1.lutKey == "" || a1.lutKey != a2.lutKey {
		t.Fatalf("sector fingerprints: %q vs %q", a1.lutKey, a2.lutKey)
	}
	forceLUT(t, a1)
	forceLUT(t, a2)
	if &a1.lut[0] != &a2.lut[0] {
		t.Error("identical codebook sectors built separate gain tables")
	}
	for _, theta := range []float64{-2.5, -0.3, 0, 0.42, 1.9} {
		if got, want := a1.GainDBi(theta), a1.gainExact(binCenter(theta)); math.Abs(got-want) > 1e-9 {
			t.Errorf("shared LUT wrong at θ=%v: got %v, want %v", theta, got, want)
		}
	}
}

// Quasi-omni discovery patterns share tables the same way.
func TestQuasiOmniLUTsShared(t *testing.T) {
	_, cb1 := D5000Codebook(rf.FreqChannel2Hz, 13)
	_, cb2 := D5000Codebook(rf.FreqChannel2Hz, 13)
	q1, ok1 := cb1.QuasiOmni[3].(*PhasedArray)
	q2, ok2 := cb2.QuasiOmni[3].(*PhasedArray)
	if !ok1 || !ok2 {
		t.Fatal("quasi-omni patterns are not phased arrays")
	}
	if q1.lutKey == "" || q1.lutKey != q2.lutKey {
		t.Fatalf("quasi-omni fingerprints: %q vs %q", q1.lutKey, q2.lutKey)
	}
	forceLUT(t, q1)
	forceLUT(t, q2)
	if &q1.lut[0] != &q2.lut[0] {
		t.Error("identical quasi-omni patterns built separate gain tables")
	}
}

// Different build parameters must never alias: a different seed draws
// different imperfections, so the fingerprints — and the tables behind
// them — stay apart.
func TestDifferentSeedsDistinctTables(t *testing.T) {
	_, cb1 := D5000Codebook(rf.FreqChannel2Hz, 1)
	_, cb2 := D5000Codebook(rf.FreqChannel2Hz, 2)
	a1, a2 := sectorArray(t, cb1, 8), sectorArray(t, cb2, 8)
	if a1.lutKey == a2.lutKey {
		t.Fatalf("distinct seeds share fingerprint %q", a1.lutKey)
	}
	forceLUT(t, a1)
	forceLUT(t, a2)
	if &a1.lut[0] == &a2.lut[0] {
		t.Error("distinct seeds share one gain table")
	}
}

// Mutating a pattern detaches it from the shared table: the fingerprint
// is cleared, the rebuilt private table reflects the new weights, and
// the cached entry other radios rely on is untouched.
func TestMutationDetachesFromSharedLUT(t *testing.T) {
	_, cb := D5000Codebook(rf.FreqChannel2Hz, 21)
	orig := sectorArray(t, cb, 4)
	key := orig.lutKey
	forceLUT(t, orig)
	shared := orig.lut

	clone := orig.Clone()
	if clone.lutKey != key {
		t.Fatalf("Clone dropped the fingerprint: %q", clone.lutKey)
	}
	clone.Steer(0.2)
	if clone.lutKey != "" || clone.lut != nil {
		t.Fatal("Steer must clear the fingerprint and the table")
	}
	forceLUT(t, clone)
	if &clone.lut[0] == &shared[0] {
		t.Error("re-steered clone still serves the shared table")
	}
	if got, want := clone.GainDBi(0.2), clone.gainExact(binCenter(0.2)); math.Abs(got-want) > 1e-9 {
		t.Errorf("rebuilt private LUT wrong: got %v, want %v", got, want)
	}

	// The shared entry survives for everyone else.
	v, ok := lutCache.Load(key)
	if !ok {
		t.Fatal("shared cache entry vanished after a clone mutated")
	}
	if &v.([]float64)[0] != &shared[0] {
		t.Error("shared cache entry was replaced")
	}
}
