package antenna

import (
	"math"

	"repro/internal/rf"
)

// This file is the antenna side of the batched channel math: float32
// linear-gain slabs derived from the existing dB LUTs, the probes that
// publish them to the rf batch kernels, and the bulk codebook-sweep
// evaluator. The slabs reuse the same 4096-bin angular grid and the same
// bin-selection arithmetic as the scalar LUT path (rf.AngleBin mirrors
// GainDBi's indexing), so a tabulated batch lookup and a scalar LUT
// lookup agree bin-for-bin; the only divergence is float32 rounding of
// the stored linear gain, which is the BatchEpsilonDB error budget.

// linSuffix extends a pattern's LUT fingerprint to name its derived
// float32 linear slab in the process-wide cache.
const linSuffix = "#lin32"

// ensureLUT tabulates the pattern immediately, bypassing the lazy
// call-count trigger. Bulk evaluators use it: a codebook sweep touches
// every bin's worth of angles, so tabulation is always profitable there.
func (a *PhasedArray) ensureLUT() {
	if a.lut == nil {
		a.buildLUT()
	}
}

// LinearTable returns the float32 linear-gain slab for the current
// weights, tabulating the pattern first if needed. Fingerprinted
// patterns share one slab per codebook entry through the process-wide
// cache, exactly like the dB LUTs they are derived from.
func (a *PhasedArray) LinearTable() *rf.PatternTable {
	if a.linTab != nil {
		return a.linTab
	}
	a.ensureLUT()
	key := ""
	if a.lutKey != "" {
		key = a.lutKey + linSuffix
		if v, ok := lutCache.Load(key); ok {
			a.linTab = v.(*rf.PatternTable)
			return a.linTab
		}
	}
	tab := &rf.PatternTable{Lin: make([]float32, len(a.lut)), MaxDB: math.Inf(-1)}
	for i, db := range a.lut {
		tab.Lin[i] = float32(rf.DbToLin(db))
		if db > tab.MaxDB {
			tab.MaxDB = db
		}
	}
	if key != "" {
		v, _ := lutCache.LoadOrStore(key, tab)
		tab = v.(*rf.PatternTable)
	}
	a.linTab = tab
	return tab
}

// LinearTableIfHot returns the linear slab only once the pattern has
// crossed the scalar path's lazy tabulation threshold, and nil before
// that. Batch kernels poll this so cold patterns keep paying the scalar
// GainFunc — preserving the build-crossover economics (and the exact
// lutCalls counting) of the unbatched code.
func (a *PhasedArray) LinearTableIfHot() *rf.PatternTable {
	if a.lut == nil {
		return nil
	}
	return a.LinearTable()
}

// TableProbe adapts any Pattern into the polling hook of an
// rf.PatternRef: phased arrays surface their linear slab once hot, every
// other pattern type reports none and stays on the scalar fallback.
func TableProbe(p Pattern) func() *rf.PatternTable {
	a, ok := p.(*PhasedArray)
	if !ok {
		if o, isOriented := p.(Oriented); isOriented {
			return TableProbe(o.Pattern)
		}
		return nil
	}
	return a.LinearTableIfHot
}

// SweepSectorGainsDBi evaluates every directional sector of the codebook
// towards every local-frame angle in thetas, writing the gains in dBi
// into dst sector-major (dst[s*len(thetas)+k] is sector s towards
// thetas[k]). dst must hold len(Sectors)*len(thetas) entries; the filled
// slab is returned. Phased-array sectors are tabulated up front and
// gathered straight from their dB LUTs, so a full 22-sector sweep costs
// loads rather than per-(sector,angle) array-factor evaluations.
func (cb *Codebook) SweepSectorGainsDBi(dst []float32, thetas []float64) []float32 {
	for s, sec := range cb.Sectors {
		row := dst[s*len(thetas) : (s+1)*len(thetas)]
		if a, ok := sec.Pattern.(*PhasedArray); ok {
			a.ensureLUT()
			for k, th := range thetas {
				row[k] = float32(a.lut[rf.AngleBin(th, len(a.lut))])
			}
			continue
		}
		for k, th := range thetas {
			row[k] = float32(sec.Pattern.GainDBi(th))
		}
	}
	return dst
}

// SectorRefs appends one rf.PatternRef per directional sector, oriented
// at the given global boresight, onto dst. The refs start cold (table
// polling only), so handing them to the batch kernels changes nothing
// about when each sector's pattern gets tabulated.
func (cb *Codebook) SectorRefs(dst []rf.PatternRef, boresight float64) []rf.PatternRef {
	for _, s := range cb.Sectors {
		dst = append(dst, rf.PatternRef{
			Bore: boresight,
			Gain: Oriented{Pattern: s.Pattern, Boresight: boresight}.GainFunc(),
			Poll: TableProbe(s.Pattern),
		})
	}
	return dst
}

// QuasiOmniRefs is SectorRefs for the discovery codewords.
func (cb *Codebook) QuasiOmniRefs(dst []rf.PatternRef, boresight float64) []rf.PatternRef {
	for _, q := range cb.QuasiOmni {
		dst = append(dst, rf.PatternRef{
			Bore: boresight,
			Gain: Oriented{Pattern: q, Boresight: boresight}.GainFunc(),
			Poll: TableProbe(q),
		})
	}
	return dst
}

// Ref builds the rf.PatternRef for a single pattern at a boresight.
func Ref(p Pattern, boresight float64) rf.PatternRef {
	return rf.PatternRef{
		Bore: boresight,
		Gain: Oriented{Pattern: p, Boresight: boresight}.GainFunc(),
		Poll: TableProbe(p),
	}
}
