package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/geom"
	"repro/internal/stats"
)

// Sector is one directional codebook entry.
type Sector struct {
	// ID is the sector index used by the beam training protocol.
	ID int
	// SteerDeg is the nominal steering angle in degrees off boresight.
	SteerDeg float64
	// Pattern is the realized (quantized) beam pattern.
	Pattern Pattern
}

// Codebook is the set of predefined beam patterns a device can switch
// between. Millimeter wave systems steer via codebooks of fixed patterns
// rather than arbitrary weights to keep transceivers and beam training
// simple (Section 2, "Beam Steering").
type Codebook struct {
	// Sectors are the directional patterns used during data transmission.
	Sectors []Sector
	// QuasiOmni are the wide patterns swept during device discovery; the
	// D5000 sweeps 32 of them (Fig. 3 / Fig. 16).
	QuasiOmni []Pattern
}

// NewCodebook builds a codebook for the array: directional sectors
// uniformly covering ±coverageDeg, and nQuasiOmni pseudo-random wide
// patterns. The quasi-omni codewords use random phase states of the
// array's own quantized shifters, which is how real consumer hardware
// produces its lumpy, gap-riddled "omni" coverage.
func NewCodebook(a *PhasedArray, nSectors int, coverageDeg float64, nQuasiOmni int, seed uint64) *Codebook {
	cb := &Codebook{}
	for i := 0; i < nSectors; i++ {
		var deg float64
		if nSectors == 1 {
			deg = 0
		} else {
			deg = -coverageDeg + 2*coverageDeg*float64(i)/float64(nSectors-1)
		}
		b := a.Clone()
		b.Steer(geom.Rad(deg))
		cb.Sectors = append(cb.Sectors, Sector{ID: i, SteerDeg: deg, Pattern: b})
	}
	rng := stats.NewRNG(seed)
	states := 1
	if a.PhaseBits > 0 {
		states = 1 << uint(a.PhaseBits)
	}
	// Cluster elements that share a projected position on the steering
	// axis (the 2x8 array's row pairs): elements of one cluster always
	// receive the same phase, otherwise they would cancel. Order clusters
	// along the axis so "adjacent" means physically adjacent — a quasi-
	// omni codeword activates a short contiguous aperture, which is what
	// makes its beam wide.
	clusters := clusterByY(a)
	for q := 0; q < nQuasiOmni; q++ {
		b := a.Clone()
		w := make([]complex128, b.N())
		// A quasi-omni codeword switches most clusters off: a small
		// active aperture radiates a wide (HPBW up to ~60°) but lumpy
		// pattern. Coarse random phases per cluster move the lobes and
		// gaps from codeword to codeword, which is what lets a sweep of
		// 32 such patterns cover the full service area.
		active := 2 + rng.Intn(2) // 2–3 adjacent active clusters
		if active > len(clusters) {
			active = len(clusters)
		}
		start := rng.Intn(len(clusters) - active + 1)
		for k := 0; k < active; k++ {
			var ph float64
			if a.PhaseBits > 0 {
				ph = 2 * math.Pi * float64(rng.Intn(states)) / float64(states)
			} else {
				ph = rng.Range(0, 2*math.Pi)
			}
			for _, i := range clusters[start+k] {
				w[i] = cmplx.Exp(complex(0, ph))
			}
		}
		if err := b.SetWeights(w); err != nil {
			panic(err) // length is correct by construction
		}
		cb.QuasiOmni = append(cb.QuasiOmni, b)
	}
	return cb
}

// fingerprintLUTs tags every pattern in the codebook with a stable
// identity derived from prefix (model + build parameters) and the entry
// index. Codebooks are pure functions of those parameters, so two radios
// of the same model and seed — e.g. every dock in a density sweep — form
// byte-identical patterns; the tags let them share one gain table per
// entry through the process-wide LUT cache instead of each building its
// own. Tags survive Clone but not re-steering.
func (cb *Codebook) fingerprintLUTs(prefix string) {
	for i, s := range cb.Sectors {
		if a, ok := s.Pattern.(*PhasedArray); ok {
			a.lutKey = fmt.Sprintf("%s/s%d", prefix, i)
		}
	}
	for i, q := range cb.QuasiOmni {
		if a, ok := q.(*PhasedArray); ok {
			a.lutKey = fmt.Sprintf("%s/q%d", prefix, i)
		}
	}
}

// clusterByY groups element indices whose projected steering-axis
// positions coincide (within a small fraction of a wavelength), ordered
// along the axis.
func clusterByY(a *PhasedArray) [][]int {
	order := make([]int, a.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return a.Elements[order[i]].Y < a.Elements[order[j]].Y
	})
	eps := 2 * math.Pi / a.waveNumber() / 20 // λ/20
	var clusters [][]int
	for _, i := range order {
		n := len(clusters)
		if n > 0 {
			last := clusters[n-1][0]
			if math.Abs(a.Elements[i].Y-a.Elements[last].Y) < eps {
				clusters[n-1] = append(clusters[n-1], i)
				continue
			}
		}
		clusters = append(clusters, []int{i})
	}
	return clusters
}

// D5000Codebook returns the codebook model of the Dell D5000 / E7440
// module: 2x8 array, sectors across the ±60° serviced cone (the dock's
// "cone of 120 degree width", Section 3.1), and the 32 quasi-omni
// discovery patterns of Fig. 3.
func D5000Codebook(freqHz float64, seed uint64) (*PhasedArray, *Codebook) {
	a := NewD5000Array(freqHz)
	a.ApplyImperfections(seed^0xE77, 1.0, 20)
	// 22 sectors over ±70°: the outermost sectors steer to the boundary
	// of the transmission area, where the paper measures degraded
	// directionality (Fig. 17, "D5000 Rotated").
	cb := NewCodebook(a, 22, 70, 32, seed)
	cb.fingerprintLUTs(fmt.Sprintf("d5000/%g/%d", freqHz, seed))
	return a, cb
}

// WiHDCodebook returns the codebook model of the DVDO Air-3c: irregular
// 24-element array with fewer, wider sectors — the paper observes the
// WiHD system transmitting "with a much wider antenna pattern than the
// D5000" (Section 3.2).
func WiHDCodebook(freqHz float64, seed uint64) (*PhasedArray, *Codebook) {
	a := NewIrregular24(freqHz, seed)
	a.ApplyImperfections(seed^0xA13, 1.2, 22)
	// Coarser phase control again widens beams.
	a.PhaseBits = 2
	cb := NewCodebook(a, 10, 75, 16, seed+1)
	cb.fingerprintLUTs(fmt.Sprintf("wihd/%g/%d", freqHz, seed))
	return a, cb
}

// BestSector returns the codebook sector whose pattern maximizes gain
// towards the given local-frame angle, as a sector-level sweep (SLS-style
// beam training) would select it.
func (cb *Codebook) BestSector(theta float64) Sector {
	best := cb.Sectors[0]
	bestG := math.Inf(-1)
	for _, s := range cb.Sectors {
		if g := s.Pattern.GainDBi(theta); g > bestG {
			bestG = g
			best = s
		}
	}
	return best
}
