// Package antenna models the radiating hardware of the devices under
// test: horn antennas and open waveguides (the Vubiq measurement
// frontend), and consumer-grade phased antenna arrays with coarse phase
// shifters (the D5000's 2x8 Wilocity module and the Air-3c's irregular
// 24-element array).
//
// The package reproduces the paper's two key beamforming findings
// (Section 4.2):
//
//   - Directional patterns of low-order consumer arrays have strong side
//     lobes, −4 to −6 dB relative to the main lobe, because few elements
//     and quantized phase control cannot synthesize clean tapers.
//   - Steering towards the boundary of the array's transmission area
//     (≈70° off broadside) loses roughly 10 dB of main-lobe gain and
//     raises side lobes to as little as −1 dB below the main lobe.
//
// All patterns are azimuthal (2-D), matching the paper's measurement
// plane. Angles are radians in the antenna's local frame; 0 is boresight.
package antenna

import (
	"math"

	"repro/internal/geom"
)

// Pattern is an azimuthal antenna gain pattern. GainDBi reports the gain
// in dBi towards the local-frame angle theta (radians, 0 = boresight,
// normalized to (-π, π]).
type Pattern interface {
	GainDBi(theta float64) float64
}

// backLobeFloorDBi is the gain floor used by the analytic aperture
// patterns; physical antennas leak a bit of energy everywhere.
const backLobeFloorDBi = -20

// Isotropic radiates 0 dBi in every direction. It is the reference
// pattern and the model for ideal omni reception.
type Isotropic struct{}

// GainDBi implements Pattern.
func (Isotropic) GainDBi(float64) float64 { return 0 }

// Horn is a directive aperture antenna with a Gaussian main lobe, used to
// model the 25 dBi horn the paper mounts on the Vubiq down-converter for
// beam pattern and angular profile measurements.
type Horn struct {
	// PeakGainDBi is the boresight gain.
	PeakGainDBi float64
	// HPBWDeg is the half-power beam width in degrees.
	HPBWDeg float64
}

// GainDBi implements Pattern with the standard Gaussian-beam
// approximation G(θ) = Gpeak − 12·(θ/HPBW)² dB, floored at the back-lobe
// level.
func (h Horn) GainDBi(theta float64) float64 {
	theta = geom.NormalizeAngle(theta)
	hp := geom.Rad(h.HPBWDeg)
	if hp <= 0 {
		return backLobeFloorDBi
	}
	g := h.PeakGainDBi - 12*(theta/hp)*(theta/hp)
	return math.Max(g, backLobeFloorDBi)
}

// MeasurementHorn returns the paper's 25 dBi horn (≈10° HPBW — gain and
// beam width of a standard WR-15 pyramidal horn are linked).
func MeasurementHorn() Horn { return Horn{PeakGainDBi: 25, HPBWDeg: 10} }

// OpenWaveguide returns the wide reception pattern of the Vubiq's bare
// WR-15 flange, which the paper uses for frame-level protocol analysis
// precisely because it hears both link directions at once.
func OpenWaveguide() Horn { return Horn{PeakGainDBi: 6.5, HPBWDeg: 90} }

// Oriented binds a pattern to a boresight direction in the global frame,
// yielding the gain-vs-global-angle function that the propagation layer
// consumes.
type Oriented struct {
	Pattern   Pattern
	Boresight float64 // global-frame angle of the local 0° axis
}

// GainDBi returns the gain towards the given global-frame angle.
func (o Oriented) GainDBi(globalAngle float64) float64 {
	return o.Pattern.GainDBi(geom.NormalizeAngle(globalAngle - o.Boresight))
}

// GainFunc adapts the oriented pattern to the rf package's plain
// func(angle) float64 form.
func (o Oriented) GainFunc() func(float64) float64 {
	return func(a float64) float64 { return o.GainDBi(a) }
}
