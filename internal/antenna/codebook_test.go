package antenna

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rf"
)

func TestCodebookSectorCoverage(t *testing.T) {
	_, cb := D5000Codebook(rf.FreqChannel2Hz, 77)
	if len(cb.Sectors) < 16 {
		t.Fatalf("sectors = %d", len(cb.Sectors))
	}
	// Steering angles span ±70° and are sorted ascending.
	first, last := cb.Sectors[0].SteerDeg, cb.Sectors[len(cb.Sectors)-1].SteerDeg
	if first != -70 || last != 70 {
		t.Errorf("coverage = [%v, %v]", first, last)
	}
	for i := 1; i < len(cb.Sectors); i++ {
		if cb.Sectors[i].SteerDeg <= cb.Sectors[i-1].SteerDeg {
			t.Fatal("sectors not ascending")
		}
		if cb.Sectors[i].ID != i {
			t.Fatal("sector IDs not sequential")
		}
	}
	// Across the service cone there is no direction where the best
	// sector drops more than ~4 dB below the best sector peak
	// (scalloping bound) — this is what keeps trained links near their
	// budget anchor.
	peak := math.Inf(-1)
	for _, s := range cb.Sectors {
		if g := Analyze(s.Pattern, 720).PeakGainDBi; g > peak {
			peak = g
		}
	}
	for deg := -65.0; deg <= 65; deg += 2.5 {
		best := math.Inf(-1)
		for _, s := range cb.Sectors {
			if g := s.Pattern.GainDBi(geom.Rad(deg)); g > best {
				best = g
			}
		}
		if best < peak-8 {
			t.Errorf("coverage hole at %v°: best %v vs peak %v", deg, best, peak)
		}
	}
}

func TestCodebookDeterministicBySeed(t *testing.T) {
	_, a := D5000Codebook(rf.FreqChannel2Hz, 5)
	_, b := D5000Codebook(rf.FreqChannel2Hz, 5)
	_, c := D5000Codebook(rf.FreqChannel2Hz, 6)
	for i := range a.QuasiOmni {
		ga := a.QuasiOmni[i].GainDBi(0.7)
		gb := b.QuasiOmni[i].GainDBi(0.7)
		if ga != gb {
			t.Fatalf("same seed diverged at quasi-omni %d", i)
		}
	}
	same := true
	for i := range a.QuasiOmni {
		if a.QuasiOmni[i].GainDBi(0.7) != c.QuasiOmni[i].GainDBi(0.7) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical quasi-omni sets")
	}
}

func TestBestSectorMatchesArgmax(t *testing.T) {
	_, cb := D5000Codebook(rf.FreqChannel2Hz, 9)
	for _, theta := range []float64{-1.1, -0.4, 0, 0.3, 0.9} {
		s := cb.BestSector(theta)
		for _, o := range cb.Sectors {
			if o.Pattern.GainDBi(theta) > s.Pattern.GainDBi(theta) {
				t.Fatalf("BestSector(%v) not optimal: %d beats %d", theta, o.ID, s.ID)
			}
		}
	}
}

func TestImperfectionsChangePattern(t *testing.T) {
	a := NewD5000Array(rf.FreqChannel2Hz)
	a.Steer(geom.Rad(20))
	clean := Analyze(a, 720).PeakSideLobeDB()
	b := NewD5000Array(rf.FreqChannel2Hz)
	b.ApplyImperfections(3, 2.0, 35)
	b.Steer(geom.Rad(20))
	dirty := Analyze(b, 720)
	if dirty.PeakSideLobeDB() == clean {
		t.Error("imperfections had no effect")
	}
	// Heavy errors must not destroy the main lobe entirely.
	if dirty.PeakGainDBi < 10 {
		t.Errorf("peak gain collapsed to %v", dirty.PeakGainDBi)
	}
}

func TestWiHDCodebookShape(t *testing.T) {
	arr, cb := WiHDCodebook(rf.FreqChannel2Hz, 2)
	if arr.N() != 24 {
		t.Errorf("elements = %d", arr.N())
	}
	if len(cb.Sectors) != 10 || len(cb.QuasiOmni) != 16 {
		t.Errorf("codebook = %d sectors, %d quasi-omni", len(cb.Sectors), len(cb.QuasiOmni))
	}
}
