package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/geom"
	"repro/internal/rf"
	"repro/internal/stats"
)

// PhasedArray models an electronically steered antenna array with
// per-element phase control. Consumer-grade 60 GHz radios use few
// elements and very coarse (2-bit) phase shifters; both limitations are
// explicit parameters here because they are the root cause of the side
// lobes the paper measures.
type PhasedArray struct {
	// Elements holds the positions of the radiating elements in meters,
	// in the array's local frame. The azimuth pattern depends on the
	// positions projected onto the azimuthal plane.
	Elements []geom.Vec2
	// FreqHz is the carrier frequency; with element spacing it sets the
	// electrical aperture.
	FreqHz float64
	// ElementGainDBi is the boresight gain of one element (patch
	// antennas on consumer modules are a few dBi).
	ElementGainDBi float64
	// ElementHPBWDeg shapes the embedded element pattern; steering far
	// off broadside loses element gain, which is the paper's "boundary
	// of the transmission area" effect.
	ElementHPBWDeg float64
	// PhaseBits is the phase-shifter resolution: weights are quantized
	// to 2^PhaseBits phase states. 0 means ideal (continuous) phase.
	PhaseBits int
	// Weights are the current complex element weights. Use Steer or
	// SetWeights to configure them.
	Weights []complex128
	// errs holds fixed per-element complex gain/phase perturbations
	// (manufacturing tolerances, feed-line mismatch, mutual coupling of
	// a cost-effective module). Nil means a perfect array. Set via
	// ApplyImperfections.
	errs []complex128
	// cached element-pattern exponent (GainDBi is the simulator's hottest
	// function; recomputing log/cos per evaluation is measurable).
	patternQ  float64
	patternHP float64
	// lut caches the realized pattern at lutBins resolution once the
	// current weights have served enough queries to amortize the build
	// (a trained sector is evaluated for every path of every frame; a
	// codebook entry probed twice during training is not).
	lut      []float64
	lutCalls int
	// lutKey, when non-empty, is a fingerprint identifying this pattern
	// across array instances (codebook model + build parameters + entry
	// index). Keyed patterns publish their built tables to a process-wide
	// cache so every radio steering the same codebook entry shares one
	// table instead of each paying the build. Any mutation clears the key:
	// the table it names no longer describes the weights.
	lutKey string
	// linTab is the float32 linear-gain slab derived from lut for the
	// batch kernels (see batch.go); nil until requested, invalidated with
	// the LUT.
	linTab *rf.PatternTable
}

// lutCache maps lutKey → []float64 gain tables shared across all arrays
// carrying the same fingerprint. Tables are immutable once stored, so
// concurrent sweep workers can read them without coordination; the lazy
// per-instance trigger (lutCalls) is untouched by sharing, keeping the
// build crossover — and thus results — identical to unshared behaviour.
var lutCache sync.Map

// lutBins is the gain-table resolution: 4096 bins ≈ 0.088°, an order of
// magnitude finer than any measurement sweep in the repository.
const lutBins = 4096

// lutBuildThreshold is the query count after which a pattern is
// considered hot and tabulated.
const lutBuildThreshold = 256

func (a *PhasedArray) invalidateLUT() {
	a.lut = nil
	a.lutCalls = 0
	a.lutKey = ""
	a.linTab = nil
}

func (a *PhasedArray) buildLUT() {
	if a.lutKey != "" {
		if v, ok := lutCache.Load(a.lutKey); ok {
			a.lut = v.([]float64)
			return
		}
	}
	lut := make([]float64, lutBins)
	for i := range lut {
		theta := -math.Pi + 2*math.Pi*(float64(i)+0.5)/lutBins
		lut[i] = a.gainExact(theta)
	}
	if a.lutKey != "" {
		// LoadOrStore converges racing builders onto one canonical table;
		// both sides computed identical values, so either slice is fine.
		v, _ := lutCache.LoadOrStore(a.lutKey, lut)
		lut = v.([]float64)
	}
	a.lut = lut
}

// ApplyImperfections draws fixed per-element amplitude and phase errors
// (log-normal gain with gainSigmaDB, Gaussian phase with phaseSigmaDeg)
// from the seed. Consumer-grade modules carry substantial tolerances;
// these raise the side-lobe floor of every pattern the array forms.
func (a *PhasedArray) ApplyImperfections(seed uint64, gainSigmaDB, phaseSigmaDeg float64) {
	rng := stats.NewRNG(seed | 1)
	a.errs = make([]complex128, len(a.Elements))
	for i := range a.errs {
		g := math.Pow(10, rng.Norm(0, gainSigmaDB)/20)
		ph := geom.Rad(rng.Norm(0, phaseSigmaDeg))
		a.errs[i] = complex(g*math.Cos(ph), g*math.Sin(ph))
	}
	a.invalidateLUT()
}

// NewURA builds a uniform rectangular array of ny rows by nx columns with
// the given element spacing in wavelengths. The steering axis (nx
// columns) lies along the local Y axis so that boresight — the broadside
// direction, where all elements are in phase — is the local +X axis
// (θ = 0). Rows are stacked perpendicular to the azimuthal plane and
// collapse onto the same projected positions, contributing pure gain,
// exactly like the D5000's 2x8 module where the 8-element axis does the
// azimuth steering.
func NewURA(nx, ny int, spacingWl, freqHz float64) *PhasedArray {
	wl := rf.Wavelength(freqHz)
	a := &PhasedArray{
		FreqHz:         freqHz,
		ElementGainDBi: 5,
		ElementHPBWDeg: 105,
		PhaseBits:      2,
	}
	for r := 0; r < ny; r++ {
		for c := 0; c < nx; c++ {
			y := (float64(c) - float64(nx-1)/2) * spacingWl * wl
			a.Elements = append(a.Elements, geom.V(0, y))
		}
	}
	a.Weights = make([]complex128, len(a.Elements))
	for i := range a.Weights {
		a.Weights[i] = 1
	}
	return a
}

// NewD5000Array returns the model of the Wilocity 2x8 module found in
// both the docking station and the notebook (Section 3.1), with λ/2
// spacing and 2-bit phase shifters.
func NewD5000Array(freqHz float64) *PhasedArray {
	return NewURA(8, 2, 0.5, freqHz)
}

// NewIrregular24 returns the model of the Air-3c's 24-element array "with
// irregular alignment in rectangular shape" (Section 3.1): positions on a
// 4x6 grid, jittered deterministically from the seed. Only four jittered
// columns steer the azimuth (the long axis is stacked vertically), so
// the beams come out roughly twice as wide as the D5000's — the paper
// finds the WiHD system transmits "with a much wider antenna pattern".
// The irregular spacing additionally smears the array factor and raises
// diffuse side lobes.
func NewIrregular24(freqHz float64, seed uint64) *PhasedArray {
	wl := rf.Wavelength(freqHz)
	rng := stats.NewRNG(seed)
	a := &PhasedArray{
		FreqHz:         freqHz,
		ElementGainDBi: 5,
		ElementHPBWDeg: 95,
		PhaseBits:      2,
	}
	const nx, ny = 4, 6
	for r := 0; r < ny; r++ {
		for c := 0; c < nx; c++ {
			y := (float64(c)-float64(nx-1)/2)*0.55*wl + rng.Range(-0.15, 0.15)*wl
			a.Elements = append(a.Elements, geom.V(0, y))
		}
	}
	a.Weights = make([]complex128, len(a.Elements))
	for i := range a.Weights {
		a.Weights[i] = 1
	}
	return a
}

// N returns the number of elements.
func (a *PhasedArray) N() int { return len(a.Elements) }

// waveNumber returns 2π/λ.
func (a *PhasedArray) waveNumber() float64 {
	return 2 * math.Pi / rf.Wavelength(a.FreqHz)
}

// phaseAt returns the propagation phase of element i towards direction
// theta: k · (x·cosθ + y·sinθ).
func (a *PhasedArray) phaseAt(i int, theta float64) float64 {
	s, c := math.Sincos(theta)
	e := a.Elements[i]
	return a.waveNumber() * (e.X*c + e.Y*s)
}

// QuantizePhase rounds phase (radians) to the nearest of 2^bits uniform
// phase states. bits ≤ 0 returns the phase unchanged.
func QuantizePhase(phase float64, bits int) float64 {
	if bits <= 0 {
		return phase
	}
	states := float64(uint(1) << uint(bits))
	step := 2 * math.Pi / states
	return math.Round(phase/step) * step
}

// Steer sets the weights to form a beam towards local angle theta0,
// conjugating the per-element phases and quantizing them to the array's
// phase-shifter resolution. This is how codebook entries are built.
func (a *PhasedArray) Steer(theta0 float64) {
	for i := range a.Weights {
		ph := QuantizePhase(-a.phaseAt(i, theta0), a.PhaseBits)
		a.Weights[i] = cmplx.Exp(complex(0, ph))
	}
	a.invalidateLUT()
}

// SetWeights installs explicit element weights (e.g. a quasi-omni
// codeword). The slice length must match the element count.
func (a *PhasedArray) SetWeights(w []complex128) error {
	if len(w) != len(a.Elements) {
		return fmt.Errorf("antenna: %d weights for %d elements", len(w), len(a.Elements))
	}
	copy(a.Weights, w)
	a.invalidateLUT()
	return nil
}

// elementPatternDB is the embedded element pattern: a cosine-shaped
// rolloff matched to ElementHPBWDeg, floored well below the back lobe of
// the array. Elements barely radiate behind the ground plane.
func (a *PhasedArray) elementPatternDB(theta float64) float64 {
	// NOTE: mutates only the cached exponent; safe because patterns are
	// evaluated from the single scheduler goroutine.
	theta = geom.NormalizeAngle(theta)
	abs := math.Abs(theta)
	if abs >= math.Pi/2 {
		// Behind the array's ground plane and the device chassis:
		// modules radiate almost nothing backwards.
		return -28
	}
	// Exponent chosen so the pattern is 3 dB down at HPBW/2 (cached per
	// beamwidth — this function runs once per path per transmission).
	if a.patternHP != a.ElementHPBWDeg {
		hp := geom.Rad(a.ElementHPBWDeg)
		a.patternQ = math.Log(0.5) / math.Log(math.Cos(hp/4)) / 2
		a.patternHP = a.ElementHPBWDeg
	}
	c := math.Cos(abs / 2)
	db := 20 * a.patternQ * math.Log10(c)
	return math.Max(db, -16)
}

// GainDBi implements Pattern: element gain, element pattern rolloff, and
// the array factor normalized so that an ideally phased array of N
// elements reaches ElementGainDBi + 10·log10(N) at the steered peak.
// Hot patterns are served from a fine-grained lookup table.
func (a *PhasedArray) GainDBi(theta float64) float64 {
	if a.lut != nil {
		t := (geom.NormalizeAngle(theta) + math.Pi) / (2 * math.Pi) * lutBins
		i := int(t)
		if i < 0 {
			i = 0
		}
		if i >= lutBins {
			i = lutBins - 1
		}
		return a.lut[i]
	}
	a.lutCalls++
	if a.lutCalls > lutBuildThreshold {
		a.buildLUT()
	}
	return a.gainExact(theta)
}

// gainExact evaluates the pattern from first principles.
func (a *PhasedArray) gainExact(theta float64) float64 {
	theta = geom.NormalizeAngle(theta)
	var sum complex128
	var norm float64
	for i, w := range a.Weights {
		if a.errs != nil {
			w *= a.errs[i]
		}
		ph := a.phaseAt(i, theta)
		sum += w * cmplx.Exp(complex(0, ph))
		norm += real(w)*real(w) + imag(w)*imag(w)
	}
	if norm == 0 {
		return backLobeFloorDBi
	}
	af := (real(sum)*real(sum) + imag(sum)*imag(sum)) / norm
	afDB := -60.0
	if af > 1e-6 {
		afDB = 10 * math.Log10(af)
	}
	g := a.ElementGainDBi + a.elementPatternDB(theta) + afDB
	return math.Max(g, backLobeFloorDBi)
}

// Clone returns a deep copy (used to snapshot codebook entries).
func (a *PhasedArray) Clone() *PhasedArray {
	b := *a
	b.Elements = append([]geom.Vec2(nil), a.Elements...)
	b.Weights = append([]complex128(nil), a.Weights...)
	b.errs = append([]complex128(nil), a.errs...)
	// The LUT (if built) remains valid for the cloned weights and is
	// shared read-only; any mutation on the clone invalidates its copy.
	return &b
}
