package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/par"
)

// Tunable defaults. Tests shrink the timeouts; production keeps them
// generous so a loaded machine never misclassifies a live worker.
const (
	// DefaultHeartbeatTimeout declares a worker dead-silent: no record
	// of any kind for this long means the process is gone, wedged, or
	// stopped, and its slice must be re-run elsewhere.
	DefaultHeartbeatTimeout = 10 * time.Second
	// DefaultMaxAttempts bounds per-experiment launches before the
	// coordinator synthesizes a structured FAIL instead of retrying.
	DefaultMaxAttempts = 3
	// DefaultRetryBase / DefaultRetryMax bound the jittered exponential
	// backoff before a dead worker's experiment is re-queued.
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryMax  = 5 * time.Second
	// DefaultStealAfter is how long a slice may age before an idle
	// worker speculatively duplicates its remaining experiments.
	DefaultStealAfter = 30 * time.Second
)

// Config tunes a sharded campaign run.
type Config struct {
	// Shards is the target worker-process count (min 1).
	Shards int
	// Deadline is the per-experiment wall-clock watchdog forwarded to
	// the workers (experiments.Campaign.Deadline semantics).
	Deadline time.Duration
	// Checkpoint, when non-nil, records every merged result in campaign
	// order and pre-fills experiments already on record (resume).
	Checkpoint *experiments.Checkpoint
	// Emit observes each experiment's status, strictly in campaign
	// order, on the Run goroutine — the same contract as
	// experiments.Campaign.Emit.
	Emit func(index int, st experiments.Status)
	// Stop, when non-nil, is polled between assignments. Once true, no
	// further experiment starts: queued and retry-pending ones are
	// skipped with synthesized statuses (experiments.SkipResult) while
	// in-flight slices run to completion and checkpoint — the campaign
	// drain contract, so a stopped sharded job resumes cleanly.
	Stop func() bool
	// SweepWorkers is the intra-experiment pool width forwarded to each
	// worker (0 keeps the worker's default).
	SweepWorkers int
	// AuditMode forwards the runtime invariant auditing mode ("off",
	// "warn", "strict") to the workers.
	AuditMode string
	// SliceSize is the number of experiments per assignment (min 1).
	// Small slices keep the pull-based queue naturally load-balanced.
	SliceSize int
	// MaxAttempts bounds per-experiment launches (default 3).
	MaxAttempts int
	// HeartbeatEvery is the worker heartbeat cadence.
	HeartbeatEvery time.Duration
	// HeartbeatTimeout classifies a silent worker as dead/wedged.
	HeartbeatTimeout time.Duration
	// ProgressTimeout classifies a worker that heartbeats but makes no
	// experiment progress as hung. Zero disables the check unless
	// Deadline is set, in which case it defaults to Deadline + 30s — a
	// healthy worker's watchdog aborts any experiment before that.
	ProgressTimeout time.Duration
	// RetryBase / RetryMax bound the retry backoff.
	RetryBase time.Duration
	RetryMax  time.Duration
	// StealAfter ages a slice before idle workers may steal it.
	StealAfter time.Duration
	// WorkerCommand builds the worker process. The default re-execs the
	// current binary with -shard-worker (the mmsim protocol flag);
	// mmsimd and tests substitute their own argv.
	WorkerCommand func() (*exec.Cmd, error)
	// Log receives human-readable robustness events (worker deaths,
	// retries, steals, degradation). Defaults to os.Stderr.
	Log io.Writer
}

func (c *Config) fillDefaults() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.SliceSize < 1 {
		c.SliceSize = 1
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if c.ProgressTimeout <= 0 && c.Deadline > 0 {
		c.ProgressTimeout = c.Deadline + 30*time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.StealAfter <= 0 {
		c.StealAfter = DefaultStealAfter
	}
	if c.WorkerCommand == nil {
		c.WorkerCommand = selfWorkerCommand
	}
	if c.Log == nil {
		c.Log = os.Stderr
	}
}

// selfWorkerCommand re-execs the running binary in mmsim's worker
// protocol mode.
func selfWorkerCommand() (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return exec.Command(exe, "-shard-worker"), nil
}

// Coordinator owns one sharded campaign execution.
type Coordinator struct {
	runners []experiments.Runner
	opts    experiments.Options
	cfg     Config

	mu     sync.Mutex
	procs  map[int]*exec.Cmd
	killed bool
}

// New builds a coordinator. Run executes it; Kill (safe from a signal
// handler goroutine) terminates the worker processes so an interrupted
// parent never strands children.
func New(runners []experiments.Runner, opts experiments.Options, cfg Config) *Coordinator {
	cfg.fillDefaults()
	return &Coordinator{runners: runners, opts: opts, cfg: cfg, procs: make(map[int]*exec.Cmd)}
}

// Kill force-terminates every live worker process and stops further
// spawns. It is the interrupt hook: the campaign's checkpoint already
// holds every merged record (seal-safe Close is the caller's job), so
// the workers' in-flight work is simply abandoned.
func (c *Coordinator) Kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killed = true
	for _, cmd := range c.procs {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

func (c *Coordinator) addProc(id int, cmd *exec.Cmd) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return false
	}
	c.procs[id] = cmd
	return true
}

func (c *Coordinator) removeProc(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.procs, id)
}

func (c *Coordinator) isKilled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// Run executes the campaign across the worker fleet and returns the
// number of experiments that did not pass — the same contract as
// experiments.RunCampaign, byte-identical statuses included.
func (c *Coordinator) Run() int {
	d := &dispatcher{
		c:       c,
		cfg:     c.cfg,
		fp:      experiments.OptionsFingerprint(c.opts),
		events:  make(chan event, 256),
		workers: make(map[int]*workerState),
		pend:    make([]*pendState, len(c.runners)),
	}
	d.merge = newMerger(len(c.runners), d.flush)

	// Pre-fill resumed experiments so the queue only carries real work.
	for i, r := range c.runners {
		if c.cfg.Checkpoint != nil {
			if res, ok := c.cfg.Checkpoint.Done(r.ID); ok {
				d.merge.offer(i, experiments.Status{Result: res, Resumed: true})
				continue
			}
		}
		d.pend[i] = &pendState{runner: r}
	}
	d.buildQueue()
	if d.merge.done() {
		return d.merge.failedCount()
	}

	// Spawn the fleet: one worker per slice up to Shards. Zero live
	// workers (fork/exec unavailable) degrades to in-process execution.
	want := c.cfg.Shards
	if n := len(d.queue); want > n {
		want = n
	}
	for i := 0; i < want; i++ {
		if err := d.spawnWorker(); err != nil {
			d.logf("shard: spawning worker: %v", err)
			break
		}
	}
	if len(d.workers) == 0 {
		d.degrade("no worker process could be started")
		return d.merge.failedCount()
	}
	d.dispatch()

	tick := d.tickEvery()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for !d.merge.done() {
		select {
		case ev := <-d.events:
			d.handle(ev)
		case <-ticker.C:
			d.tick()
		}
		if d.degraded {
			break
		}
	}
	d.shutdown()
	return d.merge.failedCount()
}

// pendState tracks one not-yet-merged experiment.
type pendState struct {
	runner   experiments.Runner
	attempts int // primary (non-speculative) launches so far
	running  int // live executions across workers (primary + stolen)
	retrying bool
	startAt  time.Time // first observed launch, for the wall annotation
}

// assignment is one slice in flight on a worker.
type assignment struct {
	seq        uint64
	indices    []int
	assignedAt time.Time
	stolen     bool // a speculative copy exists (or this is one)
}

// workerState is the dispatcher's view of one worker process.
type workerState struct {
	id           int
	cmd          *exec.Cmd
	stdin        io.Closer
	in           *msgWriter
	cur          *assignment
	lastSeen     time.Time
	lastProgress time.Time
	closing      bool   // stdin closed; exit is expected
	killReason   string // set when the coordinator killed it
}

// Event kinds flowing into the dispatcher.
const (
	evHeartbeat = iota
	evStart
	evResult
	evDone
	evExit
	evRequeue
)

type event struct {
	kind    int
	w       *workerState
	start   startMsg
	fp      string
	res     core.Result
	exitErr error
	indices []int
}

// dispatcher is the single-goroutine state machine behind Run: all
// mutable campaign state is confined here, fed by per-worker reader and
// waiter goroutines, the retry timers, and the liveness ticker.
type dispatcher struct {
	c        *Coordinator
	cfg      Config
	fp       string
	events   chan event
	queue    [][]int
	pend     []*pendState
	merge    *merger
	workers  map[int]*workerState
	nextWID  int
	nextSeq  uint64
	stopped  bool
	degraded bool
	retries  int // scheduled requeues not yet fired
}

func (d *dispatcher) logf(format string, args ...any) {
	fmt.Fprintf(d.cfg.Log, format+"\n", args...)
}

// flush observes each merged status in campaign order: record it in the
// checkpoint (mirroring RunCampaign, synthesized failures included —
// a reproducibly crashing experiment must not re-run forever on resume;
// skips stay un-checkpointed so a drained campaign resumes them), then
// hand it to the caller.
func (d *dispatcher) flush(index int, st experiments.Status) {
	if d.cfg.Checkpoint != nil && !st.Resumed && !st.Skipped {
		if err := d.cfg.Checkpoint.Record(st.Result); err != nil {
			d.logf("shard: checkpoint write failed: %v", err)
		}
	}
	if d.cfg.Emit != nil {
		d.cfg.Emit(index, st)
	}
}

// buildQueue slices the pending experiments into assignments in
// campaign order.
func (d *dispatcher) buildQueue() {
	var cur []int
	for i, p := range d.pend {
		if p == nil {
			continue
		}
		cur = append(cur, i)
		if len(cur) >= d.cfg.SliceSize {
			d.queue = append(d.queue, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		d.queue = append(d.queue, cur)
	}
}

func (d *dispatcher) tickEvery() time.Duration {
	t := d.cfg.HeartbeatTimeout
	if d.cfg.ProgressTimeout > 0 && d.cfg.ProgressTimeout < t {
		t = d.cfg.ProgressTimeout
	}
	if d.cfg.StealAfter < t {
		t = d.cfg.StealAfter
	}
	t /= 4
	if t < 10*time.Millisecond {
		t = 10 * time.Millisecond
	}
	if t > time.Second {
		t = time.Second
	}
	return t
}

// spawnWorker launches one worker process and its reader/waiter
// goroutines.
func (d *dispatcher) spawnWorker() error {
	cmd, err := d.cfg.WorkerCommand()
	if err != nil {
		return err
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	w := &workerState{
		id:           d.nextWID,
		cmd:          cmd,
		stdin:        stdin,
		lastSeen:     time.Now(),
		lastProgress: time.Now(),
	}
	d.nextWID++
	if !d.c.addProc(w.id, cmd) {
		// Kill() already fired: never grow the fleet after an interrupt.
		_ = cmd.Process.Kill()
	}

	readerDone := make(chan struct{})
	go d.readWorker(w, stdout, readerDone)
	go func() {
		// Wait only after the reader drained stdout: exec.Cmd.Wait
		// closes the pipes, and racing it loses buffered records.
		<-readerDone
		err := cmd.Wait()
		d.c.removeProc(w.id)
		d.events <- event{kind: evExit, w: w, exitErr: err}
	}()

	in, err := newMsgWriter(stdin)
	if err == nil {
		w.in = in
		// DiskFS is process-local plumbing: a live filesystem cannot ride
		// a gob hello. The worker builds its own (WorkerMain's fs
		// parameter; the real OS by default).
		wireOpts := d.c.opts
		wireOpts.DiskFS = nil
		err = in.send(tagHello, helloMsg{
			Opts:           wireOpts,
			Deadline:       d.cfg.Deadline,
			SweepWorkers:   d.cfg.SweepWorkers,
			AuditMode:      d.cfg.AuditMode,
			HeartbeatEvery: d.cfg.HeartbeatEvery,
		})
	}
	if err != nil {
		// The pipe is already broken; reap it through the normal death
		// path so its (empty) state unwinds consistently.
		w.killReason = fmt.Sprintf("hello failed: %v", err)
		_ = cmd.Process.Kill()
	}
	d.workers[w.id] = w
	return nil
}

// readWorker decodes one worker's stdout stream into dispatcher events.
func (d *dispatcher) readWorker(w *workerState, stdout io.Reader, done chan<- struct{}) {
	defer close(done)
	mr, err := newMsgReader(stdout)
	if err != nil {
		return
	}
	for {
		tag, body, err := mr.next()
		if err != nil {
			return
		}
		switch tag {
		case tagHeartbeat:
			d.events <- event{kind: evHeartbeat, w: w}
		case tagStart:
			var s startMsg
			if decodeBody(body, &s) == nil {
				d.events <- event{kind: evStart, w: w, start: s}
			}
		case tagResult:
			fp, res, err := experiments.DecodeCheckpointRecord(body)
			if err != nil {
				continue // the retry machinery covers an undecodable record
			}
			d.events <- event{kind: evResult, w: w, fp: fp, res: res}
		case tagDone:
			d.events <- event{kind: evDone, w: w}
		}
	}
}

func (d *dispatcher) handle(ev event) {
	now := time.Now()
	switch ev.kind {
	case evHeartbeat:
		ev.w.lastSeen = now
	case evStart:
		ev.w.lastSeen = now
		ev.w.lastProgress = now
		if i, ok := d.findAssigned(ev.w, ev.start.ID); ok {
			if p := d.pend[i]; p != nil && p.startAt.IsZero() {
				p.startAt = now
			}
		}
	case evResult:
		ev.w.lastSeen = now
		ev.w.lastProgress = now
		d.mergeResult(ev.w, ev.fp, ev.res)
	case evDone:
		ev.w.lastSeen = now
		ev.w.lastProgress = now
		d.finishSlice(ev.w, "slice ended without a result")
		ev.w.cur = nil
		d.dispatch()
	case evExit:
		d.workerExited(ev.w, ev.exitErr)
	case evRequeue:
		d.retries--
		var live []int
		for _, i := range ev.indices {
			p := d.pend[i]
			if p == nil || d.merge.has(i) {
				continue
			}
			p.retrying = false
			if d.stopped {
				d.skip(i)
				continue
			}
			live = append(live, i)
		}
		if len(live) > 0 {
			d.queue = append(d.queue, live)
			d.ensureWorkers()
			d.dispatch()
		}
	}
}

// findAssigned locates the first incomplete index for id in the
// worker's current slice.
func (d *dispatcher) findAssigned(w *workerState, id string) (int, bool) {
	if w.cur == nil {
		return 0, false
	}
	for _, i := range w.cur.indices {
		if d.pend[i] != nil && !d.merge.has(i) && d.pend[i].runner.ID == id {
			return i, true
		}
	}
	return 0, false
}

// mergeResult validates and merges one arriving record. First arrival
// wins; duplicates from stolen slices and records carrying a foreign
// options fingerprint are dropped.
func (d *dispatcher) mergeResult(w *workerState, fp string, res core.Result) {
	if fp != d.fp {
		d.logf("shard: worker %d: dropping record for %s with foreign fingerprint %q", w.id, res.ID, fp)
		return
	}
	i, ok := d.findAssigned(w, res.ID)
	if !ok {
		return // stale or duplicate: the slice copy that lost the race
	}
	p := d.pend[i]
	var wall time.Duration
	if !p.startAt.IsZero() {
		wall = time.Since(p.startAt)
	}
	d.merge.offer(i, experiments.Status{Result: res, Wall: wall})
}

// finishSlice settles a worker's current slice when its execution ends
// (done ack or worker death): every incomplete index loses this
// worker's execution, and indices left with no live execution are
// retried, skipped, or failed.
func (d *dispatcher) finishSlice(w *workerState, cause string) {
	if w.cur == nil {
		return
	}
	for _, i := range w.cur.indices {
		p := d.pend[i]
		if p == nil {
			continue
		}
		if p.running > 0 {
			p.running--
		}
		if d.merge.has(i) || p.retrying || p.running > 0 {
			continue
		}
		d.retryOrFail(i, cause)
	}
}

// workerExited is the death path: classify, unwind the slice, retry,
// and keep the fleet sized to the remaining work.
func (d *dispatcher) workerExited(w *workerState, exitErr error) {
	delete(d.workers, w.id)
	if w.closing {
		return // expected: we closed its stdin after the work ran out
	}
	reason := w.killReason
	if reason == "" {
		reason = fmt.Sprintf("worker %d died (%v)", w.id, exitErr)
	} else {
		reason = fmt.Sprintf("worker %d killed: %s", w.id, reason)
	}
	if w.cur != nil || !d.stopped {
		d.logf("shard: %s", reason)
	}
	d.finishSlice(w, reason)
	w.cur = nil
	d.ensureWorkers()
	d.dispatch()
}

// retryOrFail schedules one more launch for index after a jittered
// backoff, or synthesizes the structured FAIL once attempts run out.
func (d *dispatcher) retryOrFail(index int, cause string) {
	p := d.pend[index]
	if d.stopped {
		d.skip(index)
		return
	}
	if p.attempts >= d.cfg.MaxAttempts {
		d.logf("shard: giving up on %s after %d attempt(s): %s", p.runner.ID, p.attempts, cause)
		d.merge.offer(index, experiments.Status{Result: deadResult(p.runner, p.attempts, cause)})
		return
	}
	delay := par.Backoff(p.attempts, d.cfg.RetryBase, d.cfg.RetryMax)
	d.logf("shard: retrying %s in %v (attempt %d/%d): %s",
		p.runner.ID, delay.Round(time.Millisecond), p.attempts+1, d.cfg.MaxAttempts, cause)
	p.retrying = true
	d.retries++
	idx := index
	time.AfterFunc(delay, func() {
		d.events <- event{kind: evRequeue, indices: []int{idx}}
	})
}

// skip emits the campaign's synthesized skip status for an experiment
// the stopped coordinator never (re)launched.
func (d *dispatcher) skip(index int) {
	p := d.pend[index]
	d.merge.offer(index, experiments.Status{Result: experiments.SkipResult(p.runner), Skipped: true})
}

// enterStopped flips the coordinator into drain mode: queued and
// retry-pending experiments are skipped now, in-flight slices finish
// and merge normally, idle workers are released.
func (d *dispatcher) enterStopped() {
	if d.stopped {
		return
	}
	d.stopped = true
	d.queue = nil
	for i, p := range d.pend {
		if p == nil || d.merge.has(i) || p.running > 0 || p.retrying {
			continue
		}
		d.skip(i)
	}
	for _, w := range d.workers {
		if w.cur == nil {
			d.release(w)
		}
	}
}

// release closes a worker's stdin: the worker seals its stream and
// exits cleanly once its current read returns EOF.
func (d *dispatcher) release(w *workerState) {
	if w.closing {
		return
	}
	w.closing = true
	if w.in != nil {
		_ = w.in.close()
	}
	_ = w.stdin.Close()
}

// ensureWorkers respawns up to the configured shard count while backlog
// remains. A total inability to spawn with no survivors degrades to
// in-process execution — fork/exec being unavailable must cost
// throughput, never the campaign.
func (d *dispatcher) ensureWorkers() {
	if d.stopped || d.c.isKilled() {
		return
	}
	backlog := len(d.queue) > 0 || d.retries > 0
	for backlog && len(d.workers) < d.cfg.Shards {
		if err := d.spawnWorker(); err != nil {
			d.logf("shard: respawning worker: %v", err)
			break
		}
	}
	if len(d.workers) == 0 && backlog {
		d.degrade("no worker process could be (re)started")
	}
}

// dispatch assigns queued slices to idle workers, steals from
// stragglers when the queue is dry, and releases idle workers once no
// work can ever reach them.
func (d *dispatcher) dispatch() {
	if !d.stopped && d.cfg.Stop != nil && d.cfg.Stop() {
		d.enterStopped()
	}
	for _, w := range d.workers {
		if w.cur != nil || w.closing {
			continue
		}
		if d.stopped {
			d.release(w)
			continue
		}
		if len(d.queue) > 0 {
			item := d.queue[0]
			d.queue = d.queue[1:]
			d.assign(w, item, false)
			continue
		}
		if a, victimID := d.stealCandidate(); a != nil {
			remaining := d.incomplete(a.indices)
			if len(remaining) > 0 {
				d.logf("shard: worker %d stealing %d straggling experiment(s) from worker %d",
					w.id, len(remaining), victimID)
				a.stolen = true
				d.assign(w, remaining, true)
				continue
			}
		}
		if d.outstanding() == 0 {
			d.release(w)
		}
	}
}

// incomplete filters indices down to the not-yet-merged ones.
func (d *dispatcher) incomplete(indices []int) []int {
	var out []int
	for _, i := range indices {
		if d.pend[i] != nil && !d.merge.has(i) {
			out = append(out, i)
		}
	}
	return out
}

// outstanding counts experiments not yet merged or skipped.
func (d *dispatcher) outstanding() int {
	n := 0
	for i, p := range d.pend {
		if p != nil && !d.merge.has(i) {
			n++
		}
	}
	return n
}

// stealCandidate picks the oldest un-stolen slice that has aged past
// StealAfter on a still-busy worker.
func (d *dispatcher) stealCandidate() (*assignment, int) {
	var best *assignment
	bestID := -1
	now := time.Now()
	for _, w := range d.workers {
		a := w.cur
		if a == nil || a.stolen || now.Sub(a.assignedAt) < d.cfg.StealAfter {
			continue
		}
		if best == nil || a.assignedAt.Before(best.assignedAt) {
			best, bestID = a, w.id
		}
	}
	return best, bestID
}

// assign sends one slice to a worker. Primary assignments charge each
// experiment's attempt budget; speculative (stolen) copies do not — a
// steal is an optimization, not a failure.
func (d *dispatcher) assign(w *workerState, indices []int, speculative bool) {
	d.nextSeq++
	a := &assignment{seq: d.nextSeq, indices: indices, assignedAt: time.Now(), stolen: speculative}
	ids := make([]string, len(indices))
	for k, i := range indices {
		ids[k] = d.pend[i].runner.ID
		if !speculative {
			d.pend[i].attempts++
		}
		d.pend[i].running++
	}
	if err := w.in.send(tagAssign, assignMsg{Seq: a.seq, IDs: ids}); err != nil {
		// The pipe is broken: undo the accounting, requeue, and let the
		// death path reap the worker.
		for _, i := range indices {
			if !speculative {
				d.pend[i].attempts--
			}
			d.pend[i].running--
		}
		if !speculative {
			d.queue = append([][]int{indices}, d.queue...)
		}
		w.killReason = fmt.Sprintf("assignment write failed: %v", err)
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		return
	}
	w.cur = a
}

// tick is the liveness sweep: dead-silent and progress-less workers are
// killed (their exit unwinds the slice through the retry path), the
// stop hook is polled, and stalled stealing opportunities re-checked.
func (d *dispatcher) tick() {
	if !d.stopped && d.cfg.Stop != nil && d.cfg.Stop() {
		d.enterStopped()
	}
	now := time.Now()
	for _, w := range d.workers {
		if w.closing || w.killReason != "" {
			continue
		}
		if now.Sub(w.lastSeen) > d.cfg.HeartbeatTimeout {
			w.killReason = fmt.Sprintf("no heartbeat for %v", now.Sub(w.lastSeen).Round(time.Millisecond))
			_ = w.cmd.Process.Kill()
			continue
		}
		if d.cfg.ProgressTimeout > 0 && w.cur != nil && now.Sub(w.lastProgress) > d.cfg.ProgressTimeout {
			w.killReason = fmt.Sprintf("hung: no progress for %v", now.Sub(w.lastProgress).Round(time.Millisecond))
			_ = w.cmd.Process.Kill()
		}
	}
	d.dispatch()
}

// degrade runs every remaining experiment in-process through the
// resilient campaign engine — identical statuses, no worker fleet.
func (d *dispatcher) degrade(reason string) {
	d.degraded = true
	d.logf("shard: %s; running %d remaining experiment(s) in-process", reason, d.outstanding())
	var idxs []int
	var sub []experiments.Runner
	for i, p := range d.pend {
		if p == nil || d.merge.has(i) || p.running > 0 {
			continue
		}
		idxs = append(idxs, i)
		sub = append(sub, p.runner)
	}
	experiments.RunCampaign(sub, d.c.opts, experiments.Campaign{
		Parallel: d.cfg.Shards,
		Deadline: d.cfg.Deadline,
		Stop:     d.cfg.Stop,
		Emit: func(k int, st experiments.Status) {
			d.merge.offer(idxs[k], st)
		},
	})
}

// shutdown releases the fleet and reaps it: close every stdin (workers
// seal and exit on EOF), give them a grace period, then kill stragglers.
func (d *dispatcher) shutdown() {
	for _, w := range d.workers {
		d.release(w)
	}
	grace := time.After(5 * time.Second)
	killed := false
	for len(d.workers) > 0 {
		select {
		case ev := <-d.events:
			if ev.kind == evExit {
				delete(d.workers, ev.w.id)
			}
		case <-grace:
			if killed {
				return // second timeout: abandon; the waiters drain into the buffered channel
			}
			killed = true
			for _, w := range d.workers {
				if w.cmd.Process != nil {
					_ = w.cmd.Process.Kill()
				}
			}
			grace = time.After(2 * time.Second)
		}
	}
}

// deadResult synthesizes the structured FAIL for an experiment whose
// workers kept dying — the shard-level analogue of the campaign
// runner's panic/deadline/violation synthesis.
func deadResult(r experiments.Runner, attempts int, cause string) core.Result {
	res := core.Result{ID: r.ID, Title: r.Title, PaperClaim: "(worker did not complete)"}
	res.AddCheck("completed", "worker survived",
		fmt.Sprintf("worker died or hung %d time(s)", attempts), false)
	res.Note("shard: %s", cause)
	return res
}
