package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/vfs"
)

// DefaultHeartbeatEvery is the worker heartbeat cadence when the
// coordinator's hello does not override it.
const DefaultHeartbeatEvery = 250 * time.Millisecond

// WorkerMain is the shard worker protocol loop behind `mmsim
// -shard-worker` and `mmsimd shard-worker`: it reads the hello and the
// assignment stream from stdin, runs each assigned experiment through
// the resilient campaign engine (panic isolation, wall-clock watchdog,
// structured FAIL synthesis — exactly the in-process path, so a sharded
// campaign classifies failures byte-identically), and streams
// fingerprinted campaign.ckpt result records plus heartbeats back on
// stdout. It returns the process exit code: 0 after a clean stdin EOF
// (the coordinator closed the conversation), 1 on a protocol error.
//
// lookup resolves experiment IDs — experiments.Get in the real
// binaries, a synthetic registry in tests. The optional trailing fs
// argument substitutes the filesystem all capture staging and
// publishing flows through (fault-injection tests); default is the
// real OS.
func WorkerMain(stdin io.Reader, stdout io.Writer, lookup func(string) (experiments.Runner, bool), fsOpt ...vfs.FS) int {
	fsys := vfs.FS(vfs.OS())
	if len(fsOpt) > 0 && fsOpt[0] != nil {
		fsys = fsOpt[0]
	}
	in, err := newMsgReader(stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		return 1
	}
	out, err := newMsgWriter(stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		return 1
	}

	tag, body, err := in.next()
	if err != nil || tag != tagHello {
		fmt.Fprintf(os.Stderr, "shard worker: expected hello, got tag %q err %v\n", tag, err)
		return 1
	}
	var hello helloMsg
	if err := decodeBody(body, &hello); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker: bad hello:", err)
		return 1
	}
	if hello.SweepWorkers > 0 {
		par.SetWorkers(hello.SweepWorkers)
	}
	if hello.AuditMode != "" {
		if mode, err := audit.ParseMode(hello.AuditMode); err == nil {
			audit.SetMode(mode)
		}
	}

	// Captures stage into a private per-process directory and publish by
	// atomic rename: retried or speculatively-duplicated executions of
	// the same experiment may write the same capture file concurrently,
	// and since every execution is deterministic the rename can only
	// replace it with identical bytes — never a torn interleaving.
	staging := ""
	if hello.Opts.CaptureDir != "" {
		staging = filepath.Join(hello.Opts.CaptureDir, fmt.Sprintf(".shard-%d", os.Getpid()))
		if err := fsys.MkdirAll(staging, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker: capture staging:", err)
			staging = ""
		} else {
			defer fsys.RemoveAll(staging)
		}
	}
	hello.Opts.DiskFS = fsys

	hb := hello.HeartbeatEvery
	if hb <= 0 {
		hb = DefaultHeartbeatEvery
	}
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				// A send error means the coordinator is gone; the main
				// loop will notice on its next read or write.
				_ = out.send(tagHeartbeat, nil)
			}
		}
	}()

	code := 0
	for {
		tag, body, err := in.next()
		if err == io.EOF {
			break // the coordinator closed our stdin: no more work
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			code = 1
			break
		}
		if tag != tagAssign {
			continue // unknown tags are ignorable protocol extensions
		}
		var a assignMsg
		if err := decodeBody(body, &a); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker: bad assignment:", err)
			code = 1
			break
		}
		for _, id := range a.IDs {
			if err := out.send(tagStart, startMsg{Seq: a.Seq, ID: id}); err != nil {
				code = 1
				break
			}
			res := runExperiment(id, lookup, hello.Opts, staging, hello.Deadline)
			rec, err := experiments.EncodeCheckpointRecord(hello.Opts, res)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shard worker: encoding %s: %v\n", id, err)
				continue // the coordinator's retry machinery covers the gap
			}
			if err := out.sendRaw(tagResult, rec); err != nil {
				code = 1
				break
			}
		}
		if code != 0 {
			break
		}
		if err := out.send(tagDone, doneMsg{Seq: a.Seq}); err != nil {
			code = 1
			break
		}
	}

	close(stopHB)
	hbWG.Wait()
	if err := out.close(); err != nil && code == 0 {
		code = 1
	}
	return code
}

// runExperiment executes one assigned experiment through the campaign
// engine so crashes, deadlines, and audit violations synthesize the
// same structured FAIL results as an in-process campaign.
func runExperiment(id string, lookup func(string) (experiments.Runner, bool),
	opts experiments.Options, staging string, deadline time.Duration) core.Result {
	r, ok := lookup(id)
	if !ok {
		// The coordinator validates IDs before assigning, so this is
		// registry skew between binaries — report it, don't crash.
		res := core.Result{ID: id, Title: "(unknown)", PaperClaim: "(unknown experiment)"}
		res.AddCheck("known", "registered experiment", "not in this worker's registry", false)
		return res
	}
	ropts := opts
	if staging != "" {
		ropts.CaptureDir = staging
	}
	var out core.Result
	experiments.RunCampaign([]experiments.Runner{r}, ropts, experiments.Campaign{
		Parallel: 1,
		Deadline: deadline,
		Emit:     func(_ int, st experiments.Status) { out = st.Result },
	})
	if staging != "" {
		publishCaptures(opts.FS(), staging, opts.CaptureDir)
	}
	return out
}

// publishCaptures atomically moves each staged capture file into the
// real capture directory. Renames are atomic within the directory tree,
// so concurrent publishers of the (byte-identical) same capture can
// never expose a torn file. Staged data is already synced (capture
// finalization syncs before close); one directory sync after the batch
// makes the published names durable too.
func publishCaptures(fsys vfs.FS, staging, dir string) {
	ents, err := fsys.ReadDir(staging)
	if err != nil {
		return
	}
	published := false
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if fsys.Rename(filepath.Join(staging, e.Name()), filepath.Join(dir, e.Name())) == nil {
			published = true
		}
	}
	if published {
		_ = fsys.SyncDir(dir)
	}
}
