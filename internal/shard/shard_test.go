package shard

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// TestMain doubles as the worker entry point: the coordinator under
// test re-execs this test binary with SHARD_TEST_WORKER=1 so the worker
// side runs the real WorkerMain over a synthetic, env-programmable
// experiment registry — the standard helper-process pattern.
func TestMain(m *testing.M) {
	if os.Getenv("SHARD_TEST_WORKER") == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, testLookup))
	}
	os.Exit(m.Run())
}

// testLookup is the worker-side registry: pure deterministic runners
// whose misbehavior (sleep, die-once) is injected via environment
// variables so the parent test controls it per worker process.
func testLookup(id string) (experiments.Runner, bool) {
	for _, r := range testRunners() {
		if r.ID == id {
			r.Run = wrapFaults(id, r.Run)
			return r, true
		}
	}
	return experiments.Runner{}, false
}

// wrapFaults layers the env-driven fault injections over a runner.
func wrapFaults(id string, run func(experiments.Options) core.Result) func(experiments.Options) core.Result {
	return func(o experiments.Options) core.Result {
		if os.Getenv("SHARD_TEST_DIE_ID") == id {
			// Die exactly once: the first worker to reach this ID leaves a
			// flag file and exits hard mid-slice; retries run normally.
			flag := os.Getenv("SHARD_TEST_DIE_FLAG")
			if f, err := os.OpenFile(flag, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
				f.Close()
				os.Exit(3)
			}
		}
		if os.Getenv("SHARD_TEST_SLEEP_ID") == id {
			time.Sleep(time.Hour) // parked until the watchdog kills us
		}
		return run(o)
	}
}

// testRunners builds the synthetic campaign: deterministic pure
// functions of (Options, ID), like the real experiments, so shard
// results must be byte-identical to in-process ones.
func testRunners() []experiments.Runner {
	var rs []experiments.Runner
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("S%d", i)
		n := i
		rs = append(rs, experiments.Runner{
			ID:    id,
			Title: fmt.Sprintf("synthetic experiment %d", n),
			Run: func(o experiments.Options) core.Result {
				res := core.Result{ID: id, Title: fmt.Sprintf("synthetic experiment %d", n),
					PaperClaim: "synthetic"}
				v := float64(o.Seed) * float64(n+1)
				res.AddCheck("value", fmt.Sprintf("%.1f", v), fmt.Sprintf("%.1f", v), n%4 != 3)
				res.Series = append(res.Series, core.Series{
					Label: id, XLabel: "x", YLabel: "y",
					X: []float64{0, 1, 2}, Y: []float64{v, v + 1, v + 2},
				})
				if o.Quick {
					res.Note("quick mode")
				}
				if o.CaptureDir != "" {
					// Mimic the sniffer drivers: a deterministic capture
					// artifact, so the staging/publish path is exercised.
					payload := fmt.Sprintf("capture %s seed=%d\n", id, o.Seed)
					_ = os.WriteFile(filepath.Join(o.CaptureDir, id+".vubiq"), []byte(payload), 0o644)
				}
				return res
			},
		})
	}
	return rs
}

// testWorkerCommand re-execs the test binary in worker mode with extra
// environment overrides.
func testWorkerCommand(t *testing.T, extraEnv ...string) func() (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return func() (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "SHARD_TEST_WORKER=1")
		cmd.Env = append(cmd.Env, extraEnv...)
		return cmd, nil
	}
}

// referenceRun produces the single-process ground truth.
func referenceRun(runners []experiments.Runner, opts experiments.Options) ([]core.Result, int) {
	var out []core.Result
	failed := experiments.RunCampaign(runners, opts, experiments.Campaign{
		Parallel: 1,
		Emit:     func(_ int, st experiments.Status) { out = append(out, st.Result) },
	})
	return out, failed
}

// collectRun drives one sharded execution and returns the ordered
// results plus the emission order observed (must be 0..n-1).
func collectRun(t *testing.T, runners []experiments.Runner, opts experiments.Options, cfg Config) ([]core.Result, int) {
	t.Helper()
	var order []int
	var out []core.Result
	prev := cfg.Emit
	cfg.Emit = func(i int, st experiments.Status) {
		order = append(order, i)
		out = append(out, st.Result)
		if prev != nil {
			prev(i, st)
		}
	}
	failed := New(runners, opts, cfg).Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("emission order %v not strictly increasing at %d", order, i)
		}
	}
	return out, failed
}

// render flattens results to the byte surface the report is built from.
func render(results []core.Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestShardedByteIdentical is the metamorphic check at the heart of the
// design: the merged campaign must be byte-identical to the
// single-process run for every shard count.
func TestShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	runners := testRunners()
	opts := experiments.Options{Seed: 7, Quick: true}
	want, wantFailed := referenceRun(runners, opts)

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got, failed := collectRun(t, runners, opts, Config{
				Shards:        shards,
				WorkerCommand: testWorkerCommand(t),
				Log:           &bytes.Buffer{},
			})
			if failed != wantFailed {
				t.Fatalf("failed = %d, want %d", failed, wantFailed)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("results differ from single-process run")
			}
			if render(got) != render(want) {
				t.Fatalf("rendered report differs from single-process run")
			}
		})
	}
}

// TestWorkerDeathRetry kills a worker mid-slice (once) and requires the
// retry machinery to deliver the full, byte-identical campaign anyway.
func TestWorkerDeathRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	runners := testRunners()
	opts := experiments.Options{Seed: 3, Quick: true}
	want, wantFailed := referenceRun(runners, opts)

	flag := filepath.Join(t.TempDir(), "died-once")
	var log bytes.Buffer
	got, failed := collectRun(t, runners, opts, Config{
		Shards: 2,
		WorkerCommand: testWorkerCommand(t,
			"SHARD_TEST_DIE_ID=S4",
			"SHARD_TEST_DIE_FLAG="+flag,
		),
		HeartbeatTimeout: 2 * time.Second,
		RetryBase:        10 * time.Millisecond,
		RetryMax:         50 * time.Millisecond,
		Log:              &log,
	})
	if failed != wantFailed {
		t.Fatalf("failed = %d, want %d\nlog:\n%s", failed, wantFailed, log.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results differ after worker death\nlog:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "retrying") {
		t.Fatalf("expected a retry log line, got:\n%s", log.String())
	}
	if _, err := os.Stat(flag); err != nil {
		t.Fatalf("die-once flag never created: the fault did not fire")
	}
}

// TestHungWorkerSynthesizesFail parks every worker forever: the
// heartbeat/progress watchdogs must kill them, burn the attempt budget,
// and synthesize structured FAILs rather than hanging the campaign.
func TestHungWorkerSynthesizesFail(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	runners := testRunners()[:2]
	opts := experiments.Options{Seed: 1, Quick: true}

	var log bytes.Buffer
	got, failed := collectRun(t, runners, opts, Config{
		Shards:           2,
		SliceSize:        1,
		MaxAttempts:      2,
		HeartbeatTimeout: 10 * time.Second,
		ProgressTimeout:  300 * time.Millisecond,
		RetryBase:        10 * time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		StealAfter:       time.Hour,
		// Only S0 parks; S1 must complete untouched on its own worker.
		WorkerCommand: testWorkerCommand(t, "SHARD_TEST_SLEEP_ID=S0"),
		Log:           &log,
	})
	_ = failed
	if len(got) != len(runners) {
		t.Fatalf("got %d results, want %d", len(got), len(runners))
	}
	// S0 is parked: its result must be the synthesized shard FAIL.
	if got[0].Pass() {
		t.Fatalf("hung experiment S0 unexpectedly passed: %+v\nlog:\n%s", got[0], log.String())
	}
	found := false
	for _, c := range got[0].Checks {
		if c.Name == "completed" && !c.Pass {
			found = true
		}
	}
	if !found {
		t.Fatalf("S0 missing the synthesized 'completed' check: %+v", got[0].Checks)
	}
	// S1 is healthy and must have completed normally on some attempt.
	wantRef, _ := referenceRun(runners[1:2], opts)
	if !reflect.DeepEqual(got[1], wantRef[0]) {
		t.Fatalf("healthy experiment S1 corrupted by its neighbor's hang")
	}
}

// TestDegradeInProcess makes fork/exec impossible: the coordinator must
// fall back to in-process execution with identical output.
func TestDegradeInProcess(t *testing.T) {
	runners := testRunners()
	opts := experiments.Options{Seed: 5, Quick: true}
	want, wantFailed := referenceRun(runners, opts)

	var log bytes.Buffer
	got, failed := collectRun(t, runners, opts, Config{
		Shards: 4,
		WorkerCommand: func() (*exec.Cmd, error) {
			return exec.Command("/nonexistent/shard-worker-binary"), nil
		},
		Log: &log,
	})
	if failed != wantFailed {
		t.Fatalf("failed = %d, want %d", failed, wantFailed)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded results differ from single-process run")
	}
	if !strings.Contains(log.String(), "in-process") {
		t.Fatalf("expected a degradation log line, got:\n%s", log.String())
	}
}

// TestStopSkipsQueued flips the stop hook before anything launches: the
// whole campaign must drain into skip statuses, matching RunCampaign's
// drain contract.
func TestStopSkipsQueued(t *testing.T) {
	runners := testRunners()
	opts := experiments.Options{Seed: 2, Quick: true}

	var wantOut []experiments.Status
	experiments.RunCampaign(runners, opts, experiments.Campaign{
		Parallel: 1,
		Stop:     func() bool { return true },
		Emit:     func(_ int, st experiments.Status) { wantOut = append(wantOut, st) },
	})

	var got []experiments.Status
	New(runners, opts, Config{
		Shards:        4,
		WorkerCommand: testWorkerCommand(t),
		Stop:          func() bool { return true },
		Emit:          func(_ int, st experiments.Status) { got = append(got, st) },
		Log:           &bytes.Buffer{},
	}).Run()

	if len(got) != len(wantOut) {
		t.Fatalf("got %d statuses, want %d", len(got), len(wantOut))
	}
	for i := range got {
		if !got[i].Skipped || !wantOut[i].Skipped {
			t.Fatalf("status %d not skipped (got %v, want %v)", i, got[i].Skipped, wantOut[i].Skipped)
		}
		if !reflect.DeepEqual(got[i].Result, wantOut[i].Result) {
			t.Fatalf("skip result %d differs from campaign drain", i)
		}
	}
}

// TestCheckpointResume runs a sharded campaign against a checkpoint,
// then re-runs: every experiment must resume from the record with
// identical results and no worker processes.
func TestCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	runners := testRunners()
	opts := experiments.Options{Seed: 11, Quick: true}
	want, wantFailed := referenceRun(runners, opts)
	dir := t.TempDir()

	ckpt, err := experiments.OpenCheckpoint(dir, opts)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	got, failed := collectRun(t, runners, opts, Config{
		Shards:        3,
		Checkpoint:    ckpt,
		WorkerCommand: testWorkerCommand(t),
		Log:           &bytes.Buffer{},
	})
	if err := ckpt.Close(); err != nil {
		t.Fatalf("sealing checkpoint: %v", err)
	}
	if failed != wantFailed || !reflect.DeepEqual(got, want) {
		t.Fatalf("first sharded run diverged from reference")
	}

	ckpt2, err := experiments.OpenCheckpoint(dir, opts)
	if err != nil {
		t.Fatalf("reopening checkpoint: %v", err)
	}
	defer ckpt2.Close()
	var resumed int
	got2, failed2 := collectRun(t, runners, opts, Config{
		Shards:     3,
		Checkpoint: ckpt2,
		WorkerCommand: func() (*exec.Cmd, error) {
			t.Fatalf("resume run must not spawn workers")
			return nil, nil
		},
		Emit: func(_ int, st experiments.Status) {
			if st.Resumed {
				resumed++
			}
		},
		Log: &bytes.Buffer{},
	})
	if failed2 != wantFailed || !reflect.DeepEqual(got2, want) {
		t.Fatalf("resumed run diverged from reference")
	}
	if resumed != len(runners) {
		t.Fatalf("resumed %d of %d experiments", resumed, len(runners))
	}
}

// TestWorkerCaptureStaging runs a sharded campaign with captures on and
// requires the same capture files as an in-process run, with no staging
// directories left behind.
func TestWorkerCaptureStaging(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	runners := testRunners()[:3]
	refDir, gotDir := t.TempDir(), t.TempDir()
	optsRef := experiments.Options{Seed: 4, Quick: true, CaptureDir: refDir}
	optsGot := experiments.Options{Seed: 4, Quick: true, CaptureDir: gotDir}
	referenceRun(runners, optsRef)

	collectRun(t, runners, optsGot, Config{
		Shards:        2,
		WorkerCommand: testWorkerCommand(t),
		Log:           &bytes.Buffer{},
	})

	refEnts, _ := os.ReadDir(refDir)
	gotEnts, _ := os.ReadDir(gotDir)
	var refNames, gotNames []string
	for _, e := range refEnts {
		refNames = append(refNames, e.Name())
	}
	for _, e := range gotEnts {
		if strings.HasPrefix(e.Name(), ".shard-") {
			t.Fatalf("staging directory %s leaked into the capture dir", e.Name())
		}
		gotNames = append(gotNames, e.Name())
	}
	if !reflect.DeepEqual(refNames, gotNames) {
		t.Fatalf("capture files differ: got %v, want %v", gotNames, refNames)
	}
	for _, name := range refNames {
		a, err1 := os.ReadFile(filepath.Join(refDir, name))
		b, err2 := os.ReadFile(filepath.Join(gotDir, name))
		if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
			t.Fatalf("capture %s differs between sharded and in-process runs", name)
		}
	}
}
