// Package shard fans one experiment campaign across N worker processes
// while keeping the merged output byte-identical to a single-process
// run. The coordinator fork/execs workers (mmsim -shard-worker), hands
// them experiment slices from a pull-based work queue over stdin, and
// merges the fingerprinted result records arriving on their stdouts
// back into campaign order. Robustness is the point: heartbeats and
// progress deadlines classify dead vs hung workers, a lost worker's
// in-flight slice is retried on a surviving worker with capped jittered
// backoff (falling back to the campaign's structured FAIL synthesis
// after max attempts), stragglers are speculatively re-executed on idle
// workers (work-stealing; duplicates dedupe harmlessly because every
// execution is deterministic), and when fork/exec is unavailable the
// coordinator degrades to in-process execution.
//
// Wire protocol: both pipe directions are recio record streams (the
// same crash-safe framing as campaign.ckpt and .vubiq captures) under
// the shard magic. Every record payload is one tag byte followed by a
// gob body. Result records reuse the campaign.ckpt record format
// verbatim after the tag — a gob (options fingerprint, result) entry —
// so the coordinator validates provenance before merging and can feed
// the bytes straight into the durable checkpoint machinery.
package shard

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/recio"
)

const (
	// Magic identifies a shard protocol stream; distinct from the
	// checkpoint and capture magics so the file kinds cannot be confused.
	Magic = 0x4D4D5348 // "MMSH"
	// Version is the protocol version carried in the stream header.
	Version = 1
)

// Record tags: the first payload byte of every protocol record.
const (
	// tagHello (coordinator→worker) carries the session configuration.
	tagHello = 'O'
	// tagAssign (coordinator→worker) assigns one experiment slice.
	tagAssign = 'A'
	// tagHeartbeat (worker→coordinator) proves liveness while a long
	// experiment runs.
	tagHeartbeat = 'H'
	// tagStart (worker→coordinator) marks an experiment launch
	// (progress, for straggler/hang classification).
	tagStart = 'S'
	// tagResult (worker→coordinator) carries one finished experiment as
	// a campaign.ckpt record payload (gob fingerprint+result).
	tagResult = 'R'
	// tagDone (worker→coordinator) acknowledges slice completion; the
	// worker is idle and wants more work.
	tagDone = 'D'
)

// maxWireRecord bounds a single protocol record. Results carry whole
// experiment series, so the bound is far looser than recio's default.
const maxWireRecord = 1 << 24

// helloMsg configures a worker session. Everything a worker needs
// arrives here rather than on its command line, so the same argv works
// for every session.
type helloMsg struct {
	// Opts are the campaign options (seed, fidelity, capture dir).
	Opts experiments.Options
	// Deadline is the per-experiment wall-clock watchdog budget.
	Deadline time.Duration
	// SweepWorkers sets the worker's intra-experiment pool width.
	SweepWorkers int
	// AuditMode is the runtime invariant auditing mode ("off", "warn",
	// "strict").
	AuditMode string
	// HeartbeatEvery is the worker's heartbeat cadence.
	HeartbeatEvery time.Duration
}

// assignMsg hands a worker one slice of experiment IDs to run in order.
type assignMsg struct {
	Seq uint64
	IDs []string
}

// startMsg reports that the worker began running one experiment.
type startMsg struct {
	Seq uint64
	ID  string
}

// doneMsg reports that the worker finished its current slice.
type doneMsg struct {
	Seq uint64
}

// errWriterClosed rejects sends after the stream footer went down.
var errWriterClosed = errors.New("shard: protocol writer closed")

// msgWriter frames protocol messages onto one half of a worker pipe.
// It is safe for concurrent use (the worker's heartbeat goroutine and
// result loop share one) and flushes after every message — a record
// sitting in a buffer is invisible to the peer's liveness tracking.
type msgWriter struct {
	mu     sync.Mutex
	w      *recio.Writer
	buf    bytes.Buffer
	closed bool
}

func newMsgWriter(w io.Writer) (*msgWriter, error) {
	rw, err := recio.NewWriter(w, Magic, Version)
	if err != nil {
		return nil, err
	}
	mw := &msgWriter{w: rw}
	// Push the header out immediately: the peer's reader blocks on it.
	if err := rw.Flush(); err != nil {
		return nil, err
	}
	return mw, nil
}

// send frames tag plus the gob encoding of v (nil v sends the bare tag).
func (m *msgWriter) send(tag byte, v any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errWriterClosed
	}
	m.buf.Reset()
	m.buf.WriteByte(tag)
	if v != nil {
		if err := gob.NewEncoder(&m.buf).Encode(v); err != nil {
			return err
		}
	}
	if err := m.w.Append(m.buf.Bytes()); err != nil {
		return err
	}
	return m.w.Flush()
}

// sendRaw frames tag plus a pre-encoded payload — the path result
// records take, so the campaign.ckpt bytes pass through untouched.
func (m *msgWriter) sendRaw(tag byte, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errWriterClosed
	}
	m.buf.Reset()
	m.buf.WriteByte(tag)
	m.buf.Write(payload)
	if err := m.w.Append(m.buf.Bytes()); err != nil {
		return err
	}
	return m.w.Flush()
}

// close seals the stream with the recio footer. Idempotent.
func (m *msgWriter) close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.w.Close()
}

// msgReader iterates protocol records from one half of a worker pipe.
type msgReader struct {
	r *recio.Reader
}

func newMsgReader(rd io.Reader) (*msgReader, error) {
	r, _, err := recio.NewReader(rd, Magic)
	if err != nil {
		return nil, err
	}
	r.MaxRecord = maxWireRecord
	return &msgReader{r: r}, nil
}

// next returns the next record's tag and body. The body is valid only
// until the following call. A cleanly-ended or torn stream returns
// io.EOF — a severed pipe and a sealed stream are the same event to the
// peer: the conversation is over.
func (m *msgReader) next() (tag byte, body []byte, err error) {
	p, err := m.r.Next()
	if err != nil {
		return 0, nil, err
	}
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("shard: empty protocol record")
	}
	return p[0], p[1:], nil
}

// decodeBody parses a gob message body.
func decodeBody(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}
