package shard

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/vfs"
	"repro/internal/vfs/crashtest"
)

// TestPublishCapturesCrashSafe cuts the power at every point of the
// stage-then-publish flow workers use for capture files. The contract:
// the published path is either absent or the complete capture — a
// reader never sees a torn file under the real name — and once the
// batch's directory sync lands, the capture is durably published.
func TestPublishCapturesCrashSafe(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5, 0x5A, 0x0F}, 400)
	const staging = "caps/.shard-1"
	const published = "caps/F9.vubiq"
	var publishedMark int

	workload := func(m *vfs.MemFS) error {
		if err := m.MkdirAll(staging, 0o755); err != nil {
			return err
		}
		f, err := m.Create(staging + "/F9.vubiq")
		if err != nil {
			return err
		}
		if _, err := f.Write(payload); err != nil {
			return err
		}
		// Capture finalization syncs before close (capture.go); staging
		// mirrors that so the publish rename moves fully-durable data.
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		publishCaptures(m, staging, "caps")
		publishedMark = m.OpCount()
		return nil
	}

	verify := func(p crashtest.Point) error {
		if data, ok := p.Image.Files[published]; ok {
			if !bytes.Equal(data, payload) {
				return fmt.Errorf("published capture is torn: %d of %d bytes", len(data), len(payload))
			}
		} else if p.Index >= publishedMark {
			return fmt.Errorf("capture missing after publish's directory sync")
		}
		return nil
	}

	n, err := crashtest.Enumerate(nil, workload, verify)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d crash images", n)
}

// TestPublishCapturesSkipsSubdirs pins that publish only moves files:
// nested directories in staging (never created by captures, but cheap
// insurance against a future layout change) stay put.
func TestPublishCapturesSkipsSubdirs(t *testing.T) {
	m := vfs.NewMemFS()
	if err := m.MkdirAll("caps/.shard-9/nested", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("caps/.shard-9/T1.vubiq")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("trace"))
	f.Sync()
	f.Close()
	publishCaptures(m, "caps/.shard-9", "caps")
	if _, ok := m.ReadFileAt("caps/T1.vubiq"); !ok {
		t.Fatal("staged capture was not published")
	}
	if _, err := m.ReadDir("caps/nested"); err == nil {
		t.Fatal("publish moved a directory out of staging")
	}
}
