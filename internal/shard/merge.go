package shard

import (
	"repro/internal/experiments"
)

// merger restores campaign order over out-of-order result arrivals: a
// status for any index may be offered at any time (shard assignment,
// retry, and steal order are all timing-dependent), but downstream
// observers — the checkpoint and the Emit callback — see statuses in
// strict input order, exactly like experiments.RunCampaign. That
// ordering, plus per-experiment determinism, is what makes the merged
// campaign byte-identical regardless of shard count, assignment, or
// arrival order.
//
// Duplicate offers for an index (a stolen slice finishing twice) keep
// the first arrival; deterministic execution makes the copies
// byte-identical anyway, so which one wins is unobservable.
type merger struct {
	buf    []*experiments.Status
	next   int
	filled int
	failed int
	flush  func(index int, st experiments.Status)
}

// newMerger builds a merger over n campaign slots. flush observes each
// status exactly once, in input order, on the offering goroutine.
func newMerger(n int, flush func(index int, st experiments.Status)) *merger {
	return &merger{buf: make([]*experiments.Status, n), flush: flush}
}

// offer stores the status for index (first arrival wins) and flushes
// the newly-contiguous prefix. It reports whether the offer was the
// first for its index.
func (m *merger) offer(index int, st experiments.Status) bool {
	if index < 0 || index >= len(m.buf) || m.buf[index] != nil {
		return false
	}
	m.buf[index] = &st
	m.filled++
	for m.next < len(m.buf) && m.buf[m.next] != nil {
		s := *m.buf[m.next]
		if !s.Result.Pass() {
			m.failed++
		}
		m.flush(m.next, s)
		m.next++
	}
	return true
}

// done reports whether every slot has been offered and flushed.
func (m *merger) done() bool { return m.next == len(m.buf) }

// has reports whether index already holds a status.
func (m *merger) has(index int) bool {
	return index >= 0 && index < len(m.buf) && m.buf[index] != nil
}

// failedCount returns the number of flushed statuses whose result did
// not pass — the campaign's exit-status currency.
func (m *merger) failedCount() int { return m.failed }
