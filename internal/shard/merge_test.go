package shard

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

func statusFor(i int) experiments.Status {
	res := core.Result{ID: fmt.Sprintf("S%d", i), Title: "synthetic"}
	res.AddCheck("value", "x", "x", i%3 != 2)
	return experiments.Status{Result: res}
}

// permutations generates every ordering of 0..n-1 (n kept tiny).
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// TestMergerOrderInvariant offers statuses in every possible arrival
// order and requires the flush sequence — the byte surface the report
// and checkpoint are built from — to be identical each time. This is
// the arrival-order half of the metamorphic guarantee: shard count and
// scheduling may permute arrivals arbitrarily without observable effect.
func TestMergerOrderInvariant(t *testing.T) {
	const n = 6
	type emission struct {
		index int
		st    experiments.Status
	}
	var want []emission
	ref := newMerger(n, func(i int, st experiments.Status) {
		want = append(want, emission{i, st})
	})
	for i := 0; i < n; i++ {
		ref.offer(i, statusFor(i))
	}
	if !ref.done() {
		t.Fatalf("reference merger not done")
	}

	for _, perm := range permutations(n) {
		var got []emission
		m := newMerger(n, func(i int, st experiments.Status) {
			got = append(got, emission{i, st})
		})
		for _, i := range perm {
			m.offer(i, statusFor(i))
		}
		if !m.done() {
			t.Fatalf("merger not done after arrival order %v", perm)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("flush sequence for arrival order %v differs from in-order arrival", perm)
		}
		if m.failedCount() != ref.failedCount() {
			t.Fatalf("failedCount = %d, want %d for order %v", m.failedCount(), ref.failedCount(), perm)
		}
	}
}

// TestMergerFirstArrivalWins offers duplicates — the stolen-slice race —
// and requires the first offer to stick and later ones to be ignored.
func TestMergerFirstArrivalWins(t *testing.T) {
	var flushed []experiments.Status
	m := newMerger(2, func(_ int, st experiments.Status) { flushed = append(flushed, st) })

	first := statusFor(1)
	first.Result.Title = "first arrival"
	if !m.offer(1, first) {
		t.Fatalf("first offer rejected")
	}
	dup := statusFor(1)
	dup.Result.Title = "speculative duplicate"
	if m.offer(1, dup) {
		t.Fatalf("duplicate offer accepted")
	}
	m.offer(0, statusFor(0))
	if !m.done() {
		t.Fatalf("merger not done")
	}
	if flushed[1].Result.Title != "first arrival" {
		t.Fatalf("duplicate overwrote the first arrival: %q", flushed[1].Result.Title)
	}
}

// TestMergerRejectsOutOfRange guards the index arithmetic.
func TestMergerRejectsOutOfRange(t *testing.T) {
	m := newMerger(1, func(int, experiments.Status) {})
	if m.offer(-1, experiments.Status{}) || m.offer(1, experiments.Status{}) {
		t.Fatalf("out-of-range offer accepted")
	}
	if m.has(-1) || m.has(1) {
		t.Fatalf("out-of-range has() reported true")
	}
}
