// Package serve is the mmsimd simulation-as-a-service layer: an HTTP
// job daemon wrapped around the experiment campaign engine. Clients
// submit campaign jobs as JSON, the server validates them against the
// experiment registry, queues them through a bounded priority queue
// with admission control, and runs each on the shared worker pool via
// experiments.RunCampaign. Every job persists its progress through the
// campaign checkpoint machinery under its own directory, so a killed
// daemon resumes all in-flight jobs byte-identically on restart.
package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// JobSpec is the client-submitted description of one campaign job — the
// JSON body of POST /v1/jobs.
type JobSpec struct {
	// Experiments lists experiment IDs ("T1", "F9", ...) or the single
	// entry "all". Validated against the registry at submission.
	Experiments []string `json:"experiments"`
	// Seed drives all randomness within the tenant's namespace.
	Seed uint64 `json:"seed"`
	// Quick selects the reduced-cost fidelity (mmsim -quick).
	Quick bool `json:"quick,omitempty"`
	// Tenant namespaces the RNG seed: two tenants submitting the same
	// spec get decorrelated — but individually reproducible — campaigns
	// (the effective seed is a ForkAt substream of the tenant's hash).
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue; higher runs sooner, FIFO within a
	// tier.
	Priority int `json:"priority,omitempty"`
	// Deadline bounds the whole job's wall-clock time as a Go duration
	// string ("90s", "5m"). Once exceeded, unstarted experiments are
	// skipped and the job fails; in-flight ones still finish and
	// checkpoint. Empty means unlimited.
	Deadline string `json:"deadline,omitempty"`
	// Capture streams each sniffer-based experiment's raw .vubiq trace
	// into the job directory.
	Capture bool `json:"capture,omitempty"`
	// Shards fans the job's campaign across this many worker processes
	// (internal/shard): crashed or hung workers are retried and the
	// merged report stays byte-identical to an in-process run. 0 keeps
	// the job in-process. Bounded by maxShards at submission.
	Shards int `json:"shards,omitempty"`
}

// maxShards bounds JobSpec.Shards: a cap on per-job process fan-out so
// one submission cannot fork-bomb the daemon host.
const maxShards = 64

// deadline parses the job's wall-clock budget.
func (s JobSpec) deadline() (time.Duration, error) {
	if s.Deadline == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s.Deadline)
	if err != nil {
		return 0, fmt.Errorf("deadline %q is not a duration", s.Deadline)
	}
	if d < 0 {
		return 0, fmt.Errorf("deadline %q is negative", s.Deadline)
	}
	return d, nil
}

// EffectiveSeed layers the per-tenant RNG namespace onto the submitted
// seed: the seed actually handed to the experiment drivers is drawn
// from the Seed-th indexed substream (stats.RNG.ForkAt) of the tenant
// hash's generator. Deterministic in (tenant, seed), so a restarted
// daemon recomputes the identical value and resumes the same campaign.
func EffectiveSeed(tenant string, seed uint64) uint64 {
	if tenant == "" {
		return seed
	}
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return stats.NewRNG(h.Sum64()).ForkAt(seed).Uint64()
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker (also the state a
	// drained or killed daemon's in-flight jobs return to on restart).
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the campaign.
	StateRunning JobState = "running"
	// StateDone: every experiment completed and passed.
	StateDone JobState = "done"
	// StateFailed: the campaign completed with failing experiments, hit
	// its deadline, or could not run at all.
	StateFailed JobState = "failed"
	// StateCanceled: the client canceled the job before it completed.
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the server-side record of one submitted campaign.
type Job struct {
	ID string
	// Spec is the submission as accepted.
	Spec JobSpec
	// EffSeed is the tenant-namespaced seed the drivers actually run
	// with.
	EffSeed uint64
	// seq breaks priority ties FIFO.
	seq uint64

	// canceled flips when the client cancels; polled between
	// experiments via Campaign.Stop.
	canceled atomic.Bool
	// events is the job's NDJSON progress stream.
	events *eventLog

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	failed   int
	resumed  int
	skipped  int
	results  []metrics.Experiment
	report   string
	diag     string
}

// Snapshot is the JSON view of a job served by GET /v1/jobs/{id}.
type Snapshot struct {
	ID            string               `json:"id"`
	State         JobState             `json:"state"`
	Spec          JobSpec              `json:"spec"`
	EffectiveSeed uint64               `json:"effective_seed"`
	Created       time.Time            `json:"created"`
	Started       *time.Time           `json:"started,omitempty"`
	Finished      *time.Time           `json:"finished,omitempty"`
	Failed        int                  `json:"failed_experiments"`
	Resumed       int                  `json:"resumed_experiments"`
	Skipped       int                  `json:"skipped_experiments,omitempty"`
	Results       []metrics.Experiment `json:"results,omitempty"`
	Diagnostic    string               `json:"diagnostic,omitempty"`
}

// snapshot copies the job under its lock.
func (j *Job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:            j.ID,
		State:         j.state,
		Spec:          j.Spec,
		EffectiveSeed: j.EffSeed,
		Created:       j.created,
		Failed:        j.failed,
		Resumed:       j.resumed,
		Skipped:       j.skipped,
		Results:       j.results,
		Diagnostic:    j.diag,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// jobFile is the durable per-job record (<jobdir>/job.json): everything
// a restarted daemon needs to resume the job byte-identically. State
// transitions rewrite it atomically.
type jobFile struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	EffSeed uint64    `json:"effective_seed"`
	State   JobState  `json:"state"`
	Created time.Time `json:"created"`
	Failed  int       `json:"failed_experiments,omitempty"`
	Resumed int       `json:"resumed_experiments,omitempty"`
	Diag    string    `json:"diagnostic,omitempty"`
}

const (
	jobFileName    = "job.json"
	reportFileName = "report.txt"
)

// persist writes the job's durable record atomically — temp file,
// fsync, rename, parent-dir fsync (vfs.WriteFileAtomic) — so neither a
// SIGKILL nor a power cut can leave a torn or empty job.json behind.
func (j *Job) persist(fsys vfs.FS, dir string) error {
	j.mu.Lock()
	jf := jobFile{
		ID:      j.ID,
		Spec:    j.Spec,
		EffSeed: j.EffSeed,
		State:   j.state,
		Created: j.created,
		Failed:  j.failed,
		Resumed: j.resumed,
		Diag:    j.diag,
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		return err
	}
	return vfs.WriteFileAtomic(fsys, filepath.Join(dir, jobFileName), append(data, '\n'))
}

// loadJob reconstructs a job from its durable record. Jobs that were
// queued or running when the daemon died come back as queued — their
// campaign checkpoint replays everything they had finished.
func loadJob(fsys vfs.FS, dir string) (*Job, error) {
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, jobFileName))
	if err != nil {
		return nil, err
	}
	var jf jobFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(dir, jobFileName), err)
	}
	j := &Job{
		ID:      jf.ID,
		Spec:    jf.Spec,
		EffSeed: jf.EffSeed,
		events:  newEventLog(),
		state:   jf.State,
		created: jf.Created,
		failed:  jf.Failed,
		resumed: jf.Resumed,
		diag:    jf.Diag,
	}
	if !j.state.terminal() {
		j.state = StateQueued
	}
	if j.state.terminal() {
		// A finished job's report is its durable output; reload it so
		// GET /v1/jobs/{id}/report survives restarts.
		if rep, err := vfs.ReadFile(fsys, filepath.Join(dir, reportFileName)); err == nil {
			j.report = string(rep)
		}
		j.events.close()
	}
	return j, nil
}

// eventLog is a job's append-only NDJSON progress stream. Readers
// (GET /v1/jobs/{id}/events) tail it concurrently with the writer: each
// append swaps a fresh "changed" channel and closes the old one, which
// wakes every blocked streamer without a broadcast lock dance.
type eventLog struct {
	mu      sync.Mutex
	lines   []string
	done    bool
	changed chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// Event is one NDJSON progress record.
type Event struct {
	// Event discriminates the record: "state", "experiment", "done".
	Event string `json:"event"`
	// State is the job's lifecycle phase ("state" and "done" events).
	State JobState `json:"state,omitempty"`
	// ID names the experiment ("experiment" events).
	ID string `json:"id,omitempty"`
	// Pass, Resumed, Skipped qualify an experiment outcome.
	Pass    bool `json:"pass,omitempty"`
	Resumed bool `json:"resumed,omitempty"`
	Skipped bool `json:"skipped,omitempty"`
	// WallMS is the experiment's wall-clock cost in milliseconds.
	WallMS int64 `json:"wall_ms,omitempty"`
	// Series carries the experiment's metric series fingerprints.
	Series []metrics.Series `json:"series,omitempty"`
	// Failed is the campaign's failing-experiment count ("done").
	Failed int `json:"failed,omitempty"`
	// Detail carries a diagnostic on failure.
	Detail string `json:"detail,omitempty"`
}

// append marshals and appends one event, waking all streamers.
func (l *eventLog) append(e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return // Event contains only marshalable fields
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.lines = append(l.lines, string(data))
	close(l.changed)
	l.changed = make(chan struct{})
}

// close marks the stream complete, ending every tail.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.changed)
	l.changed = make(chan struct{})
}

// tail returns the lines from index from on, whether the stream is
// complete, and a channel that closes on the next change. Streamers
// loop: drain, write, wait.
func (l *eventLog) tail(from int) (lines []string, done bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.lines) {
		lines = l.lines[from:]
	}
	return lines, l.done, l.changed
}

// expandIDs validates the requested experiment list against the
// registry, expanding the "all" shorthand. Returned IDs are upper-cased
// registry keys in deterministic order.
func expandIDs(req []string, lookup func(string) bool, all func() []string) ([]string, error) {
	if len(req) == 0 {
		return nil, fmt.Errorf("experiments list is empty")
	}
	if len(req) == 1 && strings.EqualFold(req[0], "all") {
		return all(), nil
	}
	out := make([]string, 0, len(req))
	seen := make(map[string]bool, len(req))
	for _, id := range req {
		id = strings.ToUpper(strings.TrimSpace(id))
		if !lookup(id) {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("experiment %q listed twice", id)
		}
		seen[id] = true
		out = append(out, id)
	}
	return out, nil
}
