package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/shard"
	"repro/internal/vfs"
)

// Config tunes the daemon.
type Config struct {
	// DataDir roots the durable job state: each job lives in
	// <DataDir>/jobs/<id>/ with its job.json record, campaign.ckpt
	// checkpoint, report.txt output, and optional .vubiq captures.
	DataDir string
	// Jobs bounds concurrently running jobs (the worker pool; min 1).
	Jobs int
	// QueueCap bounds queued jobs; a submission beyond it is rejected
	// with 429 + Retry-After (min 1).
	QueueCap int
	// JobParallel is the per-job experiment concurrency handed to
	// experiments.RunCampaign (min 1).
	JobParallel int
	// Deadline is the per-experiment wall-clock watchdog applied to
	// every job (experiments.Campaign.Deadline); zero disables it.
	// Whole-job budgets come from JobSpec.Deadline instead.
	Deadline time.Duration
	// RetryAfter is the hint returned with 429 rejections.
	RetryAfter time.Duration
	// ShardWorkerCommand builds the worker process for jobs that request
	// sharded execution (JobSpec.Shards > 0). The default re-execs the
	// current binary with the "shard-worker" subcommand — mmsimd's
	// protocol entry; tests substitute their own argv.
	ShardWorkerCommand func() (*exec.Cmd, error)
	// FS routes every durable write (job.json, report.txt, checkpoints,
	// captures) through an injectable filesystem; nil means the real OS.
	// Fault injection and crash-point enumeration substitute theirs.
	FS vfs.FS

	// lookup and allIDs are test seams over the experiment registry.
	lookup func(id string) (experiments.Runner, bool)
	allIDs func() []string
}

func (c *Config) fillDefaults() {
	if c.Jobs < 1 {
		c.Jobs = 1
	}
	if c.QueueCap < 1 {
		c.QueueCap = 64
	}
	if c.JobParallel < 1 {
		c.JobParallel = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 10 * time.Second
	}
	if c.FS == nil {
		c.FS = vfs.OS()
	}
	if c.ShardWorkerCommand == nil {
		c.ShardWorkerCommand = func() (*exec.Cmd, error) {
			exe, err := os.Executable()
			if err != nil {
				return nil, err
			}
			return exec.Command(exe, "shard-worker"), nil
		}
	}
	if c.lookup == nil {
		c.lookup = experiments.Get
	}
	if c.allIDs == nil {
		c.allIDs = func() []string {
			var ids []string
			for _, r := range experiments.All() {
				ids = append(ids, r.ID)
			}
			return ids
		}
	}
}

// Server is the mmsimd job daemon: HTTP API, admission-controlled
// priority queue, bounded worker pool, durable per-job checkpoints.
type Server struct {
	cfg   Config
	queue *jobQueue
	mux   *http.ServeMux

	mu   sync.Mutex
	jobs map[string]*Job

	nextID   uint64 // guarded by mu
	nextSeq  atomic.Uint64
	draining atomic.Bool
	wg       sync.WaitGroup

	running      atomic.Int64
	submitted    atomic.Uint64
	rejected     atomic.Uint64
	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	jobsCanceled atomic.Uint64
	expCompleted atomic.Uint64
	expResumed   atomic.Uint64
}

// New builds a server over the data directory, reloading every job a
// previous daemon instance left behind: terminal jobs come back for
// status/report queries, queued and running ones re-enter the queue and
// resume from their campaign checkpoints byte-identically.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{
		cfg:   cfg,
		queue: newJobQueue(cfg.QueueCap),
		jobs:  make(map[string]*Job),
	}
	if err := cfg.FS.MkdirAll(s.jobsRoot(), 0o755); err != nil {
		return nil, err
	}
	if err := s.reload(); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

func (s *Server) jobsRoot() string        { return filepath.Join(s.cfg.DataDir, "jobs") }
func (s *Server) jobDir(id string) string { return filepath.Join(s.jobsRoot(), id) }

// reload restores jobs from a previous daemon instance.
func (s *Server) reload() error {
	dirs, err := s.cfg.FS.ReadDir(s.jobsRoot())
	if err != nil {
		return err
	}
	var pending []*Job
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		j, err := loadJob(s.cfg.FS, s.jobDir(d.Name()))
		if err != nil {
			// A torn or foreign directory must not block the daemon;
			// leave it on disk for inspection.
			fmt.Fprintf(os.Stderr, "serve: skipping job dir %s: %v\n", d.Name(), err)
			continue
		}
		s.jobs[j.ID] = j
		if n, ok := parseJobID(j.ID); ok && n >= s.nextID {
			s.nextID = n + 1
		}
		if !j.State().terminal() {
			pending = append(pending, j)
		}
	}
	// Requeue interrupted jobs in submission order. Capacity is waived:
	// these jobs were already admitted once.
	sort.Slice(pending, func(i, k int) bool { return pending[i].ID < pending[k].ID })
	for _, j := range pending {
		j.seq = s.nextSeq.Add(1)
		s.queue.pushForce(j)
	}
	return nil
}

const jobIDPrefix = "job-"

func formatJobID(n uint64) string { return fmt.Sprintf("%s%06d", jobIDPrefix, n) }

func parseJobID(id string) (uint64, bool) {
	if !strings.HasPrefix(id, jobIDPrefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[len(jobIDPrefix):], 10, 64)
	return n, err == nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain gracefully stops the server: admission closes (submissions get
// 503), running jobs stop launching new experiments and flush their
// checkpoints, and once every worker has parked their jobs are back in
// the durable queued state for the next daemon instance to resume.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.queue.close()
	s.wg.Wait()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.queue.popWait()
		if j == nil {
			return
		}
		s.running.Add(1)
		s.runJob(j)
		s.running.Add(-1)
	}
}

// runJob executes one job's campaign, resuming from its checkpoint.
func (s *Server) runJob(j *Job) {
	dir := s.jobDir(j.ID)
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.failed, j.resumed, j.skipped = 0, 0, 0
	j.results = nil
	j.mu.Unlock()
	if err := j.persist(s.cfg.FS, dir); err != nil {
		s.finishJob(j, dir, StateFailed, fmt.Sprintf("persisting job state: %v", err))
		return
	}
	j.events.append(Event{Event: "state", State: StateRunning})

	ids, err := expandIDs(j.Spec.Experiments, func(id string) bool {
		_, ok := s.cfg.lookup(id)
		return ok
	}, s.cfg.allIDs)
	if err != nil {
		s.finishJob(j, dir, StateFailed, err.Error())
		return
	}
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		runners[i], _ = s.cfg.lookup(id)
	}
	opts := experiments.Options{Seed: j.EffSeed, Quick: j.Spec.Quick, DiskFS: s.cfg.FS}
	if j.Spec.Capture {
		opts.CaptureDir = dir
	}
	ckpt, err := experiments.ResumeCheckpointFS(s.cfg.FS, dir, opts, ids)
	if err != nil {
		s.finishJob(j, dir, StateFailed, err.Error())
		return
	}
	defer ckpt.Close()

	jobBudget, _ := j.Spec.deadline() // validated at submission
	start := time.Now()
	var deadlineHit atomic.Bool
	stop := func() bool {
		if j.canceled.Load() || s.draining.Load() {
			return true
		}
		if jobBudget > 0 && time.Since(start) > jobBudget {
			deadlineHit.Store(true)
			return true
		}
		return false
	}

	var report strings.Builder
	skipped := 0
	var ckptErr error
	emit := func(_ int, st experiments.Status) {
		if st.CheckpointErr != nil && ckptErr == nil {
			ckptErr = st.CheckpointErr
		}
		if st.Skipped {
			skipped++
			j.mu.Lock()
			j.skipped = skipped
			j.mu.Unlock()
			j.events.append(Event{Event: "experiment", ID: st.Result.ID, Skipped: true})
			return
		}
		fp := metrics.FromResult(st.Result)
		report.WriteString(st.Result.String())
		report.WriteByte('\n')
		j.mu.Lock()
		if !fp.Pass {
			j.failed++
		}
		if st.Resumed {
			j.resumed++
		}
		j.results = append(j.results, fp)
		j.mu.Unlock()
		s.expCompleted.Add(1)
		if st.Resumed {
			s.expResumed.Add(1)
		}
		j.events.append(Event{
			Event:   "experiment",
			ID:      st.Result.ID,
			Pass:    fp.Pass,
			Resumed: st.Resumed,
			WallMS:  st.Wall.Milliseconds(),
			Series:  fp.Series,
		})
	}

	if j.Spec.Shards > 0 {
		// Sharded execution: the job's campaign fans across worker
		// processes but flows through the same checkpoint, emit, and stop
		// hooks, so cancel/drain/resume semantics — and the report bytes —
		// are identical to the in-process path.
		shard.New(runners, opts, shard.Config{
			Shards:        j.Spec.Shards,
			Deadline:      s.cfg.Deadline,
			Checkpoint:    ckpt,
			Emit:          emit,
			Stop:          stop,
			SweepWorkers:  par.Workers(),
			AuditMode:     audit.CurrentMode().String(),
			WorkerCommand: s.cfg.ShardWorkerCommand,
		}).Run()
	} else {
		experiments.RunCampaign(runners, opts, experiments.Campaign{
			Parallel:   s.cfg.JobParallel,
			Deadline:   s.cfg.Deadline,
			Checkpoint: ckpt,
			Emit:       emit,
			Stop:       stop,
		})
	}
	if err := ckpt.Close(); err != nil && ckptErr == nil {
		ckptErr = err
	}
	if ckptErr != nil {
		// Results finished in memory but their durable record is torn or
		// missing — report failed-with-diagnostics, never a clean done
		// whose resume would silently re-run experiments.
		s.finishJob(j, dir, StateFailed, fmt.Sprintf("checkpoint write failed: %v", ckptErr))
		return
	}

	switch {
	case j.canceled.Load():
		s.finishJob(j, dir, StateCanceled, "canceled by client")
	case deadlineHit.Load():
		s.finishJob(j, dir, StateFailed, fmt.Sprintf("job deadline %s exceeded", j.Spec.Deadline))
	case s.draining.Load() && skipped > 0:
		// Drained mid-run: the finished prefix is checkpointed; put the
		// job back in the durable queued state so the next daemon
		// instance resumes it byte-identically.
		j.mu.Lock()
		j.state = StateQueued
		j.started = time.Time{}
		j.mu.Unlock()
		if err := j.persist(s.cfg.FS, dir); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %s: %v\n", j.ID, err)
		}
		j.events.append(Event{Event: "state", State: StateQueued, Detail: "daemon draining; job will resume on restart"})
	default:
		// Complete. The report is the job's byte-identity surface: the
		// concatenated experiment reports with no wall-clock noise, so
		// a resumed job's report matches an uninterrupted run exactly.
		if err := vfs.WriteFileAtomic(s.cfg.FS, filepath.Join(dir, reportFileName), []byte(report.String())); err != nil {
			s.finishJob(j, dir, StateFailed, fmt.Sprintf("writing report: %v", err))
			return
		}
		j.mu.Lock()
		j.report = report.String()
		failed := j.failed
		j.mu.Unlock()
		if failed > 0 {
			s.finishJob(j, dir, StateFailed, fmt.Sprintf("%d experiment(s) failed", failed))
		} else {
			s.finishJob(j, dir, StateDone, "")
		}
	}
}

// finishJob moves the job to a terminal state, persists it, and ends
// its event stream.
func (s *Server) finishJob(j *Job, dir string, state JobState, diag string) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	j.diag = diag
	failed := j.failed
	j.mu.Unlock()
	switch state {
	case StateDone:
		s.jobsDone.Add(1)
	case StateFailed:
		s.jobsFailed.Add(1)
	case StateCanceled:
		s.jobsCanceled.Add(1)
	}
	if err := j.persist(s.cfg.FS, dir); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %s: %v\n", j.ID, err)
	}
	j.events.append(Event{Event: "done", State: state, Failed: failed, Detail: diag})
	j.events.close()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs: validate, admit, queue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	ids, err := expandIDs(spec.Experiments, func(id string) bool {
		_, ok := s.cfg.lookup(id)
		return ok
	}, s.cfg.allIDs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec.Experiments = ids
	if _, err := spec.deadline(); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if spec.Shards < 0 || spec.Shards > maxShards {
		writeError(w, http.StatusBadRequest, "bad job spec: shards %d out of range [0, %d]", spec.Shards, maxShards)
		return
	}

	s.mu.Lock()
	id := formatJobID(s.nextID)
	s.nextID++
	s.mu.Unlock()
	j := &Job{
		ID:      id,
		Spec:    spec,
		EffSeed: EffectiveSeed(spec.Tenant, spec.Seed),
		seq:     s.nextSeq.Add(1),
		events:  newEventLog(),
		state:   StateQueued,
		created: time.Now(),
	}
	// An unwritable data dir means no durable 202 is possible:
	// 507 Insufficient Storage, not a generic 500, so clients can tell
	// "my spec is fine, the daemon's disk is not" and retry elsewhere.
	dir := s.jobDir(id)
	if err := s.cfg.FS.MkdirAll(dir, 0o755); err != nil {
		writeError(w, http.StatusInsufficientStorage, "data dir unwritable: %v", err)
		return
	}
	// Persist before enqueueing: once the client holds a 202, a SIGKILL
	// must not lose the job.
	if err := j.persist(s.cfg.FS, dir); err != nil {
		s.cfg.FS.RemoveAll(dir)
		writeError(w, http.StatusInsufficientStorage, "data dir unwritable: %v", err)
		return
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	if !s.queue.push(j) {
		// Admission control: the queue is full (or closed by a racing
		// drain). Back out the durable record so a restart does not
		// resurrect a job the client was told to retry.
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.cfg.FS.RemoveAll(dir)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		writeError(w, http.StatusTooManyRequests, "job queue is full (%d queued); retry later", s.queue.depth())
		return
	}
	s.submitted.Add(1)
	j.events.append(Event{Event: "state", State: StateQueued})
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) job(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

// handleList is GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
		out[i].Results = nil // keep the listing light
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleCancel is DELETE /v1/jobs/{id}. A queued job cancels
// immediately; a running one stops after its in-flight experiments
// finish (they still checkpoint). Terminal jobs conflict.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if st := j.State(); st.terminal() {
		writeError(w, http.StatusConflict, "job is already %s", st)
		return
	}
	j.canceled.Store(true)
	if s.queue.remove(j.ID) {
		// Still queued: cancel completes synchronously.
		s.finishJob(j, s.jobDir(j.ID), StateCanceled, "canceled by client")
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	// Running (or being popped): the worker observes the flag between
	// experiments and finishes the cancellation.
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleEvents is GET /v1/jobs/{id}/events: the job's progress stream
// as NDJSON, one event per line, following until the job reaches a
// terminal state or the client disconnects. The optional ?from=N query
// parameter replays from event offset N instead of the beginning, so a
// client whose stream dropped resumes without duplicates.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "from %q is not a non-negative integer", v)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		lines, done, changed := j.events.tail(from)
		for _, line := range lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return
			}
		}
		from += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleReport is GET /v1/jobs/{id}/report: the completed campaign's
// text report — the byte-identity surface for resume verification.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	report := j.report
	state := j.state
	j.mu.Unlock()
	if report == "" {
		writeError(w, http.StatusConflict, "job is %s; no report yet", state)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, report)
}

// handleJobMetrics is GET /v1/jobs/{id}/metrics: the job's campaign
// metrics in the same internal/metrics JSON schema mmsim -metrics
// writes, so a job's output can feed the goldencheck gate directly.
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	file := metrics.File{Experiments: append([]metrics.Experiment(nil), j.results...)}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, file)
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
		"running":  s.running.Load(),
		"queued":   s.queue.depth(),
	})
}

// ServerMetrics is the GET /v1/metrics payload: daemon-level counters
// plus the runtime auditor's per-rule violation counts when auditing is
// enabled (the same taxonomy internal/metrics embeds in campaign
// snapshots).
type ServerMetrics struct {
	JobsSubmitted      uint64            `json:"jobs_submitted"`
	JobsRejected       uint64            `json:"jobs_rejected"`
	JobsDone           uint64            `json:"jobs_done"`
	JobsFailed         uint64            `json:"jobs_failed"`
	JobsCanceled       uint64            `json:"jobs_canceled"`
	JobsRunning        int64             `json:"jobs_running"`
	QueueDepth         int               `json:"queue_depth"`
	ExperimentsRun     uint64            `json:"experiments_run"`
	ExperimentsResumed uint64            `json:"experiments_resumed"`
	Audit              map[string]uint64 `json:"audit,omitempty"`
}

// handleMetrics is GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := ServerMetrics{
		JobsSubmitted:      s.submitted.Load(),
		JobsRejected:       s.rejected.Load(),
		JobsDone:           s.jobsDone.Load(),
		JobsFailed:         s.jobsFailed.Load(),
		JobsCanceled:       s.jobsCanceled.Load(),
		JobsRunning:        s.running.Load(),
		QueueDepth:         s.queue.depth(),
		ExperimentsRun:     s.expCompleted.Load(),
		ExperimentsResumed: s.expResumed.Load(),
	}
	if audit.On() {
		counts := audit.Counts()
		if len(counts) > 0 {
			m.Audit = make(map[string]uint64, len(counts))
			for rule, n := range counts {
				m.Audit[string(rule)] = n
			}
		}
	}
	writeJSON(w, http.StatusOK, m)
}
