package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/vfs"
	"repro/internal/vfs/crashtest"
)

// TestJobPersistCrashEnumeration cuts the power at every point of two
// consecutive job.json persists. The atomic-replace contract: every
// crash image either has no job.json yet, or holds one complete
// version — never a torn or mixed file — and once a persist's directory
// sync lands, that version (or a later one) is what survives.
func TestJobPersistCrashEnumeration(t *testing.T) {
	const dir = "jobs/j1"
	var queuedMark, failedMark int

	workload := func(m *vfs.MemFS) error {
		if err := m.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		j := &Job{ID: "j1", EffSeed: 7, events: newEventLog(), state: StateQueued, created: time.Now()}
		if err := j.persist(m, dir); err != nil {
			return err
		}
		queuedMark = m.OpCount()
		j.mu.Lock()
		j.state = StateFailed
		j.diag = "synthetic failure"
		j.mu.Unlock()
		if err := j.persist(m, dir); err != nil {
			return err
		}
		failedMark = m.OpCount()
		return nil
	}

	verify := func(p crashtest.Point) error {
		data, ok := p.Image.Files[dir+"/job.json"]
		if !ok {
			if p.Index >= queuedMark {
				return fmt.Errorf("job.json missing after its persist was made durable")
			}
			return nil
		}
		var jf jobFile
		if err := json.Unmarshal(data, &jf); err != nil {
			return fmt.Errorf("job.json is torn: %v", err)
		}
		switch jf.State {
		case StateQueued:
			if p.Index >= failedMark {
				return fmt.Errorf("stale queued version after the failed persist was durable")
			}
		case StateFailed:
			if jf.Diag != "synthetic failure" {
				return fmt.Errorf("failed version lost its diagnostic: %q", jf.Diag)
			}
		default:
			return fmt.Errorf("job.json holds state %q that was never persisted", jf.State)
		}
		// And daemon recovery must accept it: loadJob brings a
		// non-terminal job back as queued.
		j, err := loadJob(p.FS, dir)
		if err != nil {
			return fmt.Errorf("loadJob on crash image: %v", err)
		}
		if j.state != StateQueued && j.state != StateFailed {
			return fmt.Errorf("recovered job in state %q", j.state)
		}
		return nil
	}

	n, err := crashtest.Enumerate(nil, workload, verify)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d crash images", n)
}

// TestSubmitOnFullDiskReturns507 submits against a daemon whose data
// directory sits on a full disk: the submission must be refused with
// 507 Insufficient Storage and leave no half-created job directory
// behind.
func TestSubmitOnFullDiskReturns507(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.FaultSpec{ENOSPCAfter: 1})
	lookup, all := testRegistry(okRunner("T1", "v1"))
	_, hs := newTestServer(t, Config{DataDir: "data", FS: ffs, lookup: lookup, allIDs: all})

	_, resp := trySubmit(t, hs.URL, JobSpec{Experiments: []string{"T1"}, Seed: 1, Quick: true})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("submit on a full disk: got %s, want 507", resp.Status)
	}
	// The backout may leave the empty jobs/ parent, but never the
	// half-created job directory itself.
	ents, err := mem.ReadDir("data/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("refused submission left %d job dir(s) behind: %s", len(ents), ents[0].Name())
	}
}

// ckptBudgetFS passes everything through to the inner FS but gives
// checkpoint files a shared byte budget — the recio header fits, the
// first result record does not. That is the shape of a disk filling up
// mid-campaign while job.json stays writable, which isolates the
// failed-with-diagnostics path from the 507 admission path.
type ckptBudgetFS struct {
	vfs.FS
	budget int64

	mu      sync.Mutex
	written int64
}

func (c *ckptBudgetFS) Create(name string) (vfs.File, error) {
	f, err := c.FS.Create(name)
	if err != nil || !strings.Contains(name, "campaign.ckpt") {
		return f, err
	}
	return &budgetFile{File: f, fs: c}, nil
}

type budgetFile struct {
	vfs.File
	fs *ckptBudgetFS
}

func (b *budgetFile) Write(p []byte) (int, error) {
	b.fs.mu.Lock()
	defer b.fs.mu.Unlock()
	if b.fs.written+int64(len(p)) > b.fs.budget {
		return 0, vfs.WrapFault("write", b.Name(), syscall.ENOSPC)
	}
	b.fs.written += int64(len(p))
	return b.File.Write(p)
}

// TestCheckpointFaultFailsJobWithDiagnostics runs a job whose campaign
// checkpoint hits ENOSPC on its first record: the job must end
// StateFailed with the structured "checkpoint write failed" diagnostic
// — never StateDone with results the disk silently lost.
func TestCheckpointFaultFailsJobWithDiagnostics(t *testing.T) {
	fsys := &ckptBudgetFS{FS: vfs.NewMemFS(), budget: 64}
	lookup, all := testRegistry(okRunner("T1", "v1"))
	_, hs := newTestServer(t, Config{DataDir: "data", FS: fsys, lookup: lookup, allIDs: all})

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"T1"}, Seed: 3, Quick: true})
	got := waitState(t, hs.URL, snap.ID, StateFailed)
	if !strings.Contains(got.Diagnostic, "checkpoint write failed") {
		t.Fatalf("diagnostic = %q, want the checkpoint-write classification", got.Diagnostic)
	}
	if !strings.Contains(got.Diagnostic, "no space left") && !strings.Contains(got.Diagnostic, "ENOSPC") {
		t.Logf("diagnostic does not name the errno (acceptable, but worth seeing): %q", got.Diagnostic)
	}
}
