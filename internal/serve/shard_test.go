package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/shard"
)

// shardWorkerRegistry is the worker-process half of the sharded-job
// tests: re-execed test binaries cannot share the parent's in-memory
// registry seam, so both sides rebuild the same deterministic runners.
func shardWorkerRegistry() []experiments.Runner {
	return []experiments.Runner{
		okRunner("R1", "v1"),
		okRunner("R2", "v1"),
		okRunner("R3", "v1"),
	}
}

// TestMain doubles as the shard worker process for the sharded-job
// tests, mirroring mmsimd's "shard-worker" subcommand.
func TestMain(m *testing.M) {
	if os.Getenv("SERVE_TEST_SHARD_WORKER") == "1" {
		lookup, _ := testRegistry(shardWorkerRegistry()...)
		os.Exit(shard.WorkerMain(os.Stdin, os.Stdout, lookup))
	}
	os.Exit(m.Run())
}

// testShardWorkerCommand re-execs the test binary in worker mode.
func testShardWorkerCommand() (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "SERVE_TEST_SHARD_WORKER=1")
	return cmd, nil
}

// TestShardedJobByteIdentical runs the same job in-process and sharded
// and requires identical reports and result fingerprints — the daemon
// half of the shard merge guarantee.
func TestShardedJobByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	lookup, all := testRegistry(shardWorkerRegistry()...)
	s, hs := newTestServer(t, Config{
		DataDir:            t.TempDir(),
		lookup:             lookup,
		allIDs:             all,
		ShardWorkerCommand: testShardWorkerCommand,
	})
	defer s.Drain()

	plain := submitJob(t, hs.URL, JobSpec{Experiments: []string{"all"}, Seed: 9})
	waitState(t, hs.URL, plain.ID, StateDone)
	sharded := submitJob(t, hs.URL, JobSpec{Experiments: []string{"all"}, Seed: 9, Shards: 2})
	waitState(t, hs.URL, sharded.ID, StateDone)

	wantReport, code := getReport(t, hs.URL, plain.ID)
	if code != http.StatusOK {
		t.Fatalf("in-process report: http %d", code)
	}
	gotReport, code := getReport(t, hs.URL, sharded.ID)
	if code != http.StatusOK {
		t.Fatalf("sharded report: http %d", code)
	}
	if gotReport != wantReport {
		t.Fatalf("sharded report differs from in-process report:\n--- sharded ---\n%s\n--- in-process ---\n%s",
			gotReport, wantReport)
	}

	wantSnap, _ := getSnapshot(t, hs.URL, plain.ID)
	gotSnap, _ := getSnapshot(t, hs.URL, sharded.ID)
	if !reflect.DeepEqual(gotSnap.Results, wantSnap.Results) {
		t.Fatalf("sharded result fingerprints differ from in-process run")
	}
}

// TestSubmitShardsValidation bounds JobSpec.Shards at admission.
func TestSubmitShardsValidation(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	for _, shards := range []int{-1, maxShards + 1} {
		_, resp := trySubmit(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 1, Shards: shards})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("shards=%d: got %s, want 400", shards, resp.Status)
		}
	}
}

// fetchEvents reads the full NDJSON stream for a job with an optional
// from offset.
func fetchEvents(t *testing.T, base, id string, from int) []string {
	t.Helper()
	url := fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", base, id, from)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: got %s, want 200", resp.Status)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestEventsReplayFrom exercises the ?from=N offset: a reconnecting
// client must receive exactly the suffix it has not yet seen.
func TestEventsReplayFrom(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"), okRunner("R2", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"all"}, Seed: 1})
	waitState(t, hs.URL, snap.ID, StateDone)

	full := fetchEvents(t, hs.URL, snap.ID, 0)
	if len(full) < 3 {
		t.Fatalf("expected at least 3 events, got %v", full)
	}
	if !strings.Contains(full[len(full)-1], `"event":"done"`) {
		t.Fatalf("last event is not done: %q", full[len(full)-1])
	}
	for from := 0; from <= len(full); from++ {
		part := fetchEvents(t, hs.URL, snap.ID, from)
		if !reflect.DeepEqual(part, full[from:]) && !(len(part) == 0 && len(full[from:]) == 0) {
			t.Fatalf("events?from=%d = %v, want %v", from, part, full[from:])
		}
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID + "/events?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("events?from=banana: got %s, want 400", resp.Status)
	}
}
