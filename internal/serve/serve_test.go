package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// okRunner builds a deterministic synthetic runner whose report depends
// on (marker, seed) — the marker distinguishes runner versions across
// daemon generations, the seed makes tenant namespacing observable.
func okRunner(id, marker string) experiments.Runner {
	return experiments.Runner{
		ID:    id,
		Title: "synthetic " + id,
		Run: func(o experiments.Options) core.Result {
			res := core.Result{ID: id, Title: "synthetic " + id, PaperClaim: "(synthetic)"}
			res.AddCheck("marker", marker, marker, true)
			res.AddCheck("seed", fmt.Sprint(o.Seed), fmt.Sprint(o.Seed), true)
			return res
		},
	}
}

// blockingRunner parks until release is closed, holding its worker slot.
// Its result does not depend on when it was released, so a pre-closed
// channel yields the identical report.
func blockingRunner(id string, release <-chan struct{}) experiments.Runner {
	return experiments.Runner{
		ID:    id,
		Title: "blocking " + id,
		Run: func(o experiments.Options) core.Result {
			<-release
			res := core.Result{ID: id, Title: "blocking " + id}
			res.AddCheck("released", "yes", "yes", true)
			return res
		},
	}
}

// releaser hands tests an idempotent unblock function so both the happy
// path and deferred cleanup can call it without a double-close panic —
// and a t.Fatal can never leave a worker wedged under a deferred Drain.
func releaser() (<-chan struct{}, func()) {
	ch := make(chan struct{})
	var once sync.Once
	return ch, func() { once.Do(func() { close(ch) }) }
}

// testRegistry wires runners into the Config lookup/allIDs seams.
func testRegistry(runners ...experiments.Runner) (func(string) (experiments.Runner, bool), func() []string) {
	m := make(map[string]experiments.Runner, len(runners))
	ids := make([]string, 0, len(runners))
	for _, r := range runners {
		m[r.ID] = r
		ids = append(ids, r.ID)
	}
	return func(id string) (experiments.Runner, bool) {
			r, ok := m[id]
			return r, ok
		}, func() []string {
			return ids
		}
}

// newTestServer boots a started Server behind httptest. It does NOT
// drain on cleanup — tests that want a graceful stop call Drain
// themselves, and the kill/resume test abandons a server on purpose.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func submitJob(t *testing.T, base string, spec JobSpec) Snapshot {
	t.Helper()
	snap, resp := trySubmit(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %s, want 202", resp.Status)
	}
	return snap
}

func trySubmit(t *testing.T, base string, spec JobSpec) (Snapshot, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var snap Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("submit response %q: %v", data, err)
		}
	}
	return snap, resp
}

func getSnapshot(t *testing.T, base, id string) (Snapshot, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var snap Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("status response %q: %v", data, err)
		}
	}
	return snap, resp.StatusCode
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, base, id string, want JobState) Snapshot {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		snap, code := getSnapshot(t, base, id)
		if code == http.StatusOK && snap.State == want {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: still %q (http %d), want %q", id, snap.State, code, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitResults polls until the job has emitted at least n results — and
// because the campaign checkpoints each result before emitting it, those
// n results are durably on disk once this returns.
func waitResults(t *testing.T, base, id string, n int) Snapshot {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		snap, code := getSnapshot(t, base, id)
		if code == http.StatusOK && len(snap.Results) >= n {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: %d results, want ≥ %d", id, len(snap.Results), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getReport(t *testing.T, base, id string) (string, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data), resp.StatusCode
}

func TestSubmitRunReport(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"), okRunner("R2", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"r1", "R2"}, Seed: 42})
	if snap.ID == "" {
		t.Fatalf("submit snapshot has no ID: %+v", snap)
	}
	if got := snap.Spec.Experiments; len(got) != 2 || got[0] != "R1" || got[1] != "R2" {
		t.Fatalf("experiments not normalized: %v", got)
	}
	if snap.EffectiveSeed != 42 {
		t.Fatalf("tenantless effective seed = %d, want 42", snap.EffectiveSeed)
	}

	done := waitState(t, hs.URL, snap.ID, StateDone)
	if done.Failed != 0 || len(done.Results) != 2 {
		t.Fatalf("done snapshot: failed=%d results=%d", done.Failed, len(done.Results))
	}
	if done.Results[0].ID != "R1" || done.Results[1].ID != "R2" {
		t.Fatalf("results out of campaign order: %v, %v", done.Results[0].ID, done.Results[1].ID)
	}

	report, code := getReport(t, hs.URL, snap.ID)
	if code != http.StatusOK {
		t.Fatalf("report: http %d", code)
	}
	opts := experiments.Options{Seed: 42}
	want := okRunner("R1", "v1").Run(opts).String() + "\n" + okRunner("R2", "v1").Run(opts).String() + "\n"
	if report != want {
		t.Fatalf("report mismatch:\n got %q\nwant %q", report, want)
	}

	// The durable layout: job.json + campaign.ckpt + report.txt.
	dir := s.jobDir(snap.ID)
	for _, name := range []string{jobFileName, experiments.CheckpointFile, reportFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("job dir missing %s: %v", name, err)
		}
	}
}

func TestSubmitAllShorthand(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"), okRunner("R2", "v1"), okRunner("R3", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"all"}, Seed: 1})
	done := waitState(t, hs.URL, snap.ID, StateDone)
	if len(done.Results) != 3 {
		t.Fatalf("all expanded to %d results, want 3", len(done.Results))
	}
}

func TestSubmitValidation(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	cases := []struct {
		name string
		body string
	}{
		{"not json", `{"experiments":`},
		{"unknown field", `{"experiments":["R1"],"seed":1,"bogus":true}`},
		{"empty list", `{"experiments":[],"seed":1}`},
		{"unknown experiment", `{"experiments":["R9"],"seed":1}`},
		{"duplicate experiment", `{"experiments":["R1","r1"],"seed":1}`},
		{"bad deadline", `{"experiments":["R1"],"seed":1,"deadline":"soon"}`},
		{"negative deadline", `{"experiments":["R1"],"seed":1,"deadline":"-5s"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("got %s, want 400", resp.Status)
			}
			var ae apiError
			if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
				t.Fatalf("400 body should carry a diagnostic, got err=%v %+v", err, ae)
			}
		})
	}
}

func TestQueueFullRejectsWith429(t *testing.T) {
	release, rel := releaser()
	lookup, all := testRegistry(okRunner("R1", "v1"), blockingRunner("B1", release))
	s, hs := newTestServer(t, Config{
		DataDir: t.TempDir(), Jobs: 1, QueueCap: 1,
		RetryAfter: 7 * time.Second,
		lookup:     lookup, allIDs: all,
	})
	defer s.Drain()
	defer rel()

	blocker := submitJob(t, hs.URL, JobSpec{Experiments: []string{"B1"}, Seed: 1})
	waitState(t, hs.URL, blocker.ID, StateRunning) // worker popped it; queue empty

	queued := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 2})

	_, resp := trySubmit(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: got %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	// The rejected job left no durable residue to resurrect on restart.
	dirs, err := os.ReadDir(s.jobsRoot())
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("rejected job left a directory behind: %d dirs", len(dirs))
	}

	rel()
	waitState(t, hs.URL, blocker.ID, StateDone)
	waitState(t, hs.URL, queued.ID, StateDone)
}

func TestPriorityOrdering(t *testing.T) {
	var mu sync.Mutex
	var order []uint64
	recorder := experiments.Runner{
		ID:    "R1",
		Title: "recording R1",
		Run: func(o experiments.Options) core.Result {
			mu.Lock()
			order = append(order, o.Seed)
			mu.Unlock()
			res := core.Result{ID: "R1", Title: "recording R1"}
			res.AddCheck("ok", "ok", "ok", true)
			return res
		},
	}
	release, rel := releaser()
	lookup, all := testRegistry(recorder, blockingRunner("B1", release))
	s, hs := newTestServer(t, Config{
		DataDir: t.TempDir(), Jobs: 1, QueueCap: 10,
		lookup: lookup, allIDs: all,
	})
	defer s.Drain()
	defer rel()

	blocker := submitJob(t, hs.URL, JobSpec{Experiments: []string{"B1"}, Seed: 100})
	waitState(t, hs.URL, blocker.ID, StateRunning)

	// Submission order: seeds 1 (P0), 2 (P5), 3 (P0), 4 (P10). The
	// single worker must pop 4 first, then 2, then FIFO within P0: 1, 3.
	var ids []string
	for _, j := range []struct {
		seed uint64
		prio int
	}{{1, 0}, {2, 5}, {3, 0}, {4, 10}} {
		snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: j.seed, Priority: j.prio})
		ids = append(ids, snap.ID)
	}
	rel()
	waitState(t, hs.URL, blocker.ID, StateDone)
	for _, id := range ids {
		waitState(t, hs.URL, id, StateDone)
	}
	mu.Lock()
	got := fmt.Sprint(order)
	mu.Unlock()
	if want := fmt.Sprint([]uint64{4, 2, 1, 3}); got != want {
		t.Fatalf("run order %s, want %s", got, want)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release, rel := releaser()
	lookup, all := testRegistry(okRunner("R1", "v1"), blockingRunner("B1", release))
	s, hs := newTestServer(t, Config{
		DataDir: t.TempDir(), Jobs: 1, QueueCap: 10,
		lookup: lookup, allIDs: all,
	})
	defer s.Drain()
	defer rel()

	del := func(id string) (int, Snapshot) {
		req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var snap Snapshot
		if resp.StatusCode < 300 {
			if err := json.Unmarshal(data, &snap); err != nil {
				t.Fatalf("cancel response %q: %v", data, err)
			}
		}
		return resp.StatusCode, snap
	}

	blocker := submitJob(t, hs.URL, JobSpec{Experiments: []string{"B1"}, Seed: 1})
	waitState(t, hs.URL, blocker.ID, StateRunning)
	queued := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 2})

	// Queued: cancel is synchronous — 200 and already terminal.
	code, snap := del(queued.ID)
	if code != http.StatusOK || snap.State != StateCanceled {
		t.Fatalf("queued cancel: http %d state %q", code, snap.State)
	}
	// Canceling a terminal job conflicts.
	if code, _ := del(queued.ID); code != http.StatusConflict {
		t.Fatalf("double cancel: got %d, want 409", code)
	}
	// Unknown job.
	if code, _ := del("job-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown cancel: got %d, want 404", code)
	}

	// Running: cancel is asynchronous — 202, and the worker finishes it
	// once the in-flight experiment returns.
	code, _ = del(blocker.ID)
	if code != http.StatusAccepted {
		t.Fatalf("running cancel: got %d, want 202", code)
	}
	rel()
	final := waitState(t, hs.URL, blocker.ID, StateCanceled)
	if final.Diagnostic == "" {
		t.Fatal("canceled job should carry a diagnostic")
	}
}

func TestEventStreamNDJSON(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"), okRunner("R2", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1", "R2"}, Seed: 5})
	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q is not a JSON event: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.State != StateDone || last.Failed != 0 {
		t.Fatalf("final event: %+v", last)
	}
	var exp []string
	for _, e := range events {
		if e.Event == "experiment" {
			exp = append(exp, e.ID)
			if !e.Pass {
				t.Fatalf("experiment %s reported fail: %+v", e.ID, e)
			}
		}
	}
	if fmt.Sprint(exp) != fmt.Sprint([]string{"R1", "R2"}) {
		t.Fatalf("experiment events %v, want [R1 R2] in campaign order", exp)
	}
	// The stream replays from the start for late subscribers.
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay, _ := io.ReadAll(resp2.Body)
	if n := strings.Count(string(replay), "\n"); n != len(events) {
		t.Fatalf("replay has %d lines, want %d", n, len(events))
	}
}

func TestTenantSeedNamespacing(t *testing.T) {
	if EffectiveSeed("", 9) != 9 {
		t.Fatal("tenantless seed must pass through")
	}
	if EffectiveSeed("alice", 9) == EffectiveSeed("bob", 9) {
		t.Fatal("tenants must decorrelate")
	}
	if EffectiveSeed("alice", 9) != EffectiveSeed("alice", 9) {
		t.Fatal("effective seed must be deterministic")
	}
	if EffectiveSeed("alice", 9) == EffectiveSeed("alice", 10) {
		t.Fatal("seeds within a tenant must differ")
	}

	lookup, all := testRegistry(okRunner("R1", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), Jobs: 2, lookup: lookup, allIDs: all})
	defer s.Drain()

	run := func(tenant string) string {
		snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 9, Tenant: tenant})
		waitState(t, hs.URL, snap.ID, StateDone)
		report, code := getReport(t, hs.URL, snap.ID)
		if code != http.StatusOK {
			t.Fatalf("report: http %d", code)
		}
		return report
	}
	alice1, alice2, bob := run("alice"), run("alice"), run("bob")
	if alice1 != alice2 {
		t.Fatal("same tenant+seed must reproduce byte-identically")
	}
	if alice1 == bob {
		t.Fatal("different tenants with the same seed must produce different campaigns")
	}
}

// TestKillResumeByteIdentical is the round trip at the heart of the
// daemon: generation A dies mid-campaign (abandoned without drain, as a
// SIGKILL would leave it), generation B reloads the same data directory,
// requeues the job, and must produce a report byte-identical to an
// uninterrupted run — with the finished prefix served from the
// checkpoint, not re-run.
func TestKillResumeByteIdentical(t *testing.T) {
	dataDir := t.TempDir()
	// Never released: A's worker stays wedged like a killed process.
	neverRelease := make(chan struct{})
	// Pre-released: the same blocking runner, passing through instantly,
	// so generations B and C produce R2's report identically.
	released, rel := releaser()
	rel()

	// Generation A: R1 completes and checkpoints, R2 wedges forever.
	lookupA, allA := testRegistry(
		okRunner("R1", "variant-a"),
		blockingRunner("R2", neverRelease),
		okRunner("R3", "v1"),
	)
	_, hsa := newTestServer(t, Config{
		DataDir: dataDir, JobParallel: 3,
		lookup: lookupA, allIDs: allA,
	})
	spec := JobSpec{Experiments: []string{"R1", "R2", "R3"}, Seed: 7}
	snap := submitJob(t, hsa.URL, spec)
	// One emitted result means R1 is durably checkpointed (the campaign
	// records before it emits). Then abandon A — no drain, no cleanup.
	waitResults(t, hsa.URL, snap.ID, 1)

	// Generation B: same data dir. Its R1 answers differently — if the
	// resumed report still says variant-a, it came from the checkpoint.
	lookupB, allB := testRegistry(
		okRunner("R1", "variant-b"),
		blockingRunner("R2", released),
		okRunner("R3", "v1"),
	)
	sb, hsb := newTestServer(t, Config{
		DataDir: dataDir, JobParallel: 3,
		lookup: lookupB, allIDs: allB,
	})
	defer sb.Drain()
	resumed := waitState(t, hsb.URL, snap.ID, StateDone)
	if resumed.Resumed < 1 {
		t.Fatalf("resumed_experiments = %d, want ≥ 1", resumed.Resumed)
	}
	reportB, code := getReport(t, hsb.URL, snap.ID)
	if code != http.StatusOK {
		t.Fatalf("report: http %d", code)
	}
	if !strings.Contains(reportB, "variant-a") || strings.Contains(reportB, "variant-b") {
		t.Fatalf("R1 was re-run instead of resumed from the checkpoint:\n%s", reportB)
	}

	// Uninterrupted comparator: fresh data dir, A's runner versions with
	// R2 passing through.
	lookupC, allC := testRegistry(
		okRunner("R1", "variant-a"),
		blockingRunner("R2", released),
		okRunner("R3", "v1"),
	)
	sc, hsc := newTestServer(t, Config{
		DataDir: t.TempDir(), JobParallel: 3,
		lookup: lookupC, allIDs: allC,
	})
	defer sc.Drain()
	clean := submitJob(t, hsc.URL, spec)
	waitState(t, hsc.URL, clean.ID, StateDone)
	reportClean, code := getReport(t, hsc.URL, clean.ID)
	if code != http.StatusOK {
		t.Fatalf("clean report: http %d", code)
	}
	if reportB != reportClean {
		t.Fatalf("resumed report is not byte-identical to a clean run:\n--- resumed ---\n%s--- clean ---\n%s", reportB, reportClean)
	}
}

func TestJobDeadlineFailsJob(t *testing.T) {
	// Both runners outlast the 50ms job budget, so whichever wins the
	// single slot, the second poll of Stop sees the deadline blown and
	// skips the rest — deterministically failing the job.
	slow := func(id string) experiments.Runner {
		return experiments.Runner{
			ID:    id,
			Title: "slow " + id,
			Run: func(o experiments.Options) core.Result {
				time.Sleep(100 * time.Millisecond)
				res := core.Result{ID: id, Title: "slow " + id}
				res.AddCheck("ok", "ok", "ok", true)
				return res
			},
		}
	}
	lookup, all := testRegistry(slow("S1"), slow("S2"))
	s, hs := newTestServer(t, Config{
		DataDir: t.TempDir(), JobParallel: 1,
		lookup: lookup, allIDs: all,
	})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"S1", "S2"}, Seed: 1, Deadline: "50ms"})
	final := waitState(t, hs.URL, snap.ID, StateFailed)
	if !strings.Contains(final.Diagnostic, "deadline") {
		t.Fatalf("diagnostic %q should mention the deadline", final.Diagnostic)
	}
	if final.Skipped < 1 {
		t.Fatalf("skipped_experiments = %d, want ≥ 1", final.Skipped)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 1})
	waitState(t, hs.URL, snap.ID, StateDone)

	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["draining"] != false {
		t.Fatalf("healthz: %v", hz)
	}

	resp2, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m ServerMetrics
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.JobsSubmitted != 1 || m.JobsDone != 1 || m.ExperimentsRun != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	s.Drain()
	_, resp := trySubmit(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: got %s, want 503", resp.Status)
	}
}

func TestJobMetricsEndpointSchema(t *testing.T) {
	lookup, all := testRegistry(okRunner("R1", "v1"))
	s, hs := newTestServer(t, Config{DataDir: t.TempDir(), lookup: lookup, allIDs: all})
	defer s.Drain()

	snap := submitJob(t, hs.URL, JobSpec{Experiments: []string{"R1"}, Seed: 1})
	waitState(t, hs.URL, snap.ID, StateDone)
	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var file struct {
		Experiments []struct {
			ID   string `json:"id"`
			Pass bool   `json:"pass"`
		} `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatal(err)
	}
	if len(file.Experiments) != 1 || file.Experiments[0].ID != "R1" || !file.Experiments[0].Pass {
		t.Fatalf("metrics file: %+v", file)
	}
}
