package serve

import (
	"container/heap"
	"sync"
)

// jobQueue is the bounded priority queue feeding the worker pool:
// higher-priority jobs pop first, FIFO within a tier (submission
// sequence breaks ties). Admission control lives at push: a full queue
// rejects, and the HTTP layer turns that into 429 + Retry-After.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	cap    int
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues the job, reporting false when the queue is at capacity
// (admission control) or closed (draining).
func (q *jobQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.heap) >= q.cap {
		return false
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
	return true
}

// popWait blocks until a job is available (returning it) or the queue
// closes (returning nil). Workers loop on it.
func (q *jobQueue) popWait() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil
	}
	return heap.Pop(&q.heap).(*Job)
}

// pushForce enqueues ignoring capacity — used only when reloading
// previously-admitted jobs on restart, so a shrunk queue flag can never
// strand one.
func (q *jobQueue) pushForce(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
}

// remove pulls a still-queued job out (cancelation), reporting whether
// it was present.
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.heap {
		if j.ID == id {
			heap.Remove(&q.heap, i)
			return true
		}
	}
	return false
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// close stops admission and wakes every blocked worker; queued jobs
// stay queued (their durable state files already say so) for the next
// daemon instance to pick up.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// jobHeap orders by (priority desc, sequence asc).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
