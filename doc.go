// Package repro is a simulation-based reproduction of "Boon and Bane of
// 60 GHz Networks: Practical Insights into Beamforming, Interference,
// and Frame Level Operation" (Nitsche et al., CoNEXT 2015).
//
// The paper is a measurement study of consumer-grade 60 GHz hardware —
// a Dell D5000 WiGig docking station and a DVDO Air-3c WirelessHD link —
// observed through a Vubiq down-converter. This module rebuilds the
// entire measured system in software: 60 GHz propagation with
// material-dependent reflections, consumer-grade phased-array models
// with quantized phase shifters, the WiGig and WiHD MAC protocols at
// frame level, a TCP/iperf transport, and the down-converter
// measurement methodology itself. On top of it, internal/experiments
// regenerates every table and figure of the paper's evaluation.
//
// This root package is the public facade: it re-exports the scenario
// toolkit so downstream users import a single package.
//
//	sc := repro.NewScenario(repro.OpenSpace(), 42)
//	link := sc.AddWiGigLink(
//	    repro.WiGigConfig{Name: "dock", Pos: repro.XY(0, 0)},
//	    repro.WiGigConfig{Name: "laptop", Pos: repro.XY(2, 0)},
//	)
//	link.WaitAssociated(sc.Sched, time.Second)
//
// See the examples directory for runnable scenarios and cmd/mmsim for
// the experiment harness.
package repro
