#!/usr/bin/env bash
# Crash-matrix smoke test: run the crash-point enumeration and
# fault-injection suites for every persistence surface under the race
# detector, then drive a real mmsim campaign onto a deterministically
# failing disk (-fault-disk) and require that resuming the salvaged
# checkpoint on a healthy disk converges to the uninterrupted
# campaign's output byte-for-byte (wall-clock and capture annotations
# aside).
#
# Surfaces covered by the test leg:
#   - vfs WriteFileAtomic / OSFS / FaultFS classification
#   - recio stream writer (fault schedules, seal-on-fault, fuzz-style cuts)
#   - sniffer TraceWriter captures
#   - experiments campaign checkpoint (incl. rewrite-on-open compaction)
#   - serve job.json persistence + 507 admission + failed-with-diagnostics
#   - shard capture staging publish
#
# Usage: scripts/crash_matrix_smoke.sh  (from the repo root)
set -u

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

echo "== crash-point enumeration + fault injection under -race"
go test -race -count=1 \
  -run 'Crash|Fault|Torn|Enumerate|FullDisk|Diagnostics|PublishCaptures|WriteFileAtomic|OSFS' \
  ./internal/vfs/... ./internal/recio ./internal/sniffer \
  ./internal/experiments ./internal/serve ./internal/shard \
  || fail "crash/fault test matrix failed"

echo "== build"
go build -o "$TMP/mmsim" ./cmd/mmsim || exit 1

IDS="T1 F3 F24 F8 F9"
FLAGS="-quick -seed 5 -parallel 1"

# Legitimate differences between the legs: wall-clock annotations,
# resumed-from-checkpoint markers, capture-file notes (paths differ and
# fault-leg captures may be torn), and the checkpoint-write diagnostics
# the faulted leg synthesizes.
scrub() {
  grep -v -e 'wall time' -e 'resumed from checkpoint' -e '\.vubiq' \
    -e 'checkpoint write failed'
}

echo "== uninterrupted reference run"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$TMP/capA" run $IDS > "$TMP/ref.out" \
  || fail "reference campaign failed"

echo "== campaign onto a disk that fills up (-fault-disk enospc)"
# The byte budget lands mid-campaign: early records checkpoint cleanly,
# then the disk is full and every later record write must fail closed —
# sealed checkpoint, structured diagnostics, no torn footer. The run
# itself may exit non-zero (drivers can fail on capture faults); the
# contract under test is what the disk holds afterwards.
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$TMP/capB" -fault-disk "seed=7,enospc=6000" run $IDS \
  > "$TMP/faulted.out" 2> "$TMP/faulted.err"
if ! grep -q 'checkpoint write failed' "$TMP/faulted.out"; then
  fail "fault budget never landed: no checkpoint-write diagnostic (tune enospc down?)"
fi

echo "== resume the salvaged checkpoint on a healthy disk"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$TMP/capB" -resume run $IDS > "$TMP/resumed.out" \
  || fail "resume over the salvaged checkpoint failed"
if ! diff <(scrub < "$TMP/ref.out") <(scrub < "$TMP/resumed.out") > "$TMP/diff.out"; then
  fail "resumed campaign differs from the uninterrupted run:"
  cat "$TMP/diff.out" >&2
fi

echo "== malformed -fault-disk exits 2 with usage"
"$TMP/mmsim" -fault-disk "torn=2" run T1 > /dev/null 2> "$TMP/err.out"
rc=$?
if [ "$rc" -ne 2 ]; then
  fail "mmsim -fault-disk torn=2 exited $rc, want 2"
elif ! grep -q 'usage:' "$TMP/err.out"; then
  fail "mmsim -fault-disk torn=2 printed no usage"
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "crash matrix smoke: $FAILURES failure(s)" >&2
  exit 1
fi
echo "crash matrix smoke: all checks passed"
