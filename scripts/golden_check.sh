#!/bin/sh
# golden_check.sh — the golden-metrics regression gate.
#
# Runs the full quick campaign under the strict runtime auditor (any
# invariant violation aborts its experiment and fails the gate), dumps
# the campaign metrics, and compares them against the committed snapshot
# GOLDEN.json with per-metric tolerances via cmd/goldencheck.
#
# Usage:
#   scripts/golden_check.sh            # gate: exit 1 on any drift
#   scripts/golden_check.sh -update    # refresh GOLDEN.json from a clean run
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "golden gate: quick campaign under -audit=strict..." >&2
go run ./cmd/mmsim -quick -audit=strict -metrics "$tmp/metrics.json" run all
go run ./cmd/goldencheck -golden GOLDEN.json -metrics "$tmp/metrics.json" "$@"
