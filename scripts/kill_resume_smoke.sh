#!/usr/bin/env bash
# Kill-and-resume smoke test: SIGKILL an mmsim campaign mid-run, resume
# it from the checkpoint, and require the resumed campaign's reports to
# be byte-identical to an uninterrupted run (wall-clock annotations
# aside). Also exercises the CLI's malformed-flag validation and
# tracedump's truncation exit codes.
#
# Usage: scripts/kill_resume_smoke.sh  (from the repo root)
set -u

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

echo "== build"
go build -o "$TMP/mmsim" ./cmd/mmsim || exit 1
go build -o "$TMP/tracedump" ./cmd/tracedump || exit 1

# The campaign: fast experiments first (so the kill lands after at least
# one checkpoint record), with enough heavy tail (X1, X2, F22 are ~1-3 s
# each even in quick mode) that the signals below reliably land mid-run.
# -parallel 1 keeps the report order deterministic.
IDS="T1 F3 F24 F8 F9 F18 F21 X1 X2 F22"
FLAGS="-quick -seed 3 -parallel 1"

# Strip the only lines that legitimately differ between an interrupted
# and an uninterrupted campaign: wall-clock annotations, the
# resumed-from-checkpoint markers, and capture-file notes (the two legs
# stream their .vubiq traces to different directories).
scrub() {
  grep -v -e 'wall time' -e 'resumed from checkpoint' -e '\.vubiq'
}

echo "== uninterrupted reference run"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$TMP/capA" run $IDS > "$TMP/full.out" || fail "reference campaign failed"

echo "== interrupted run (SIGKILL after the first report)"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$TMP/capB" run $IDS > "$TMP/killed.out" 2>/dev/null &
PID=$!
for _ in $(seq 1 200); do
  if grep -q 'wall time' "$TMP/killed.out" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
if [ ! -s "$TMP/capB/campaign.ckpt" ]; then
  fail "no checkpoint written before the kill"
fi

echo "== resume"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$TMP/capB" -resume run $IDS > "$TMP/resumed.out" || fail "resumed campaign failed"
if ! grep -q 'resumed from checkpoint' "$TMP/resumed.out"; then
  fail "resume re-ran every experiment (no checkpoint hit)"
fi
if ! diff <(scrub < "$TMP/full.out") <(scrub < "$TMP/resumed.out") > "$TMP/diff.out"; then
  fail "resumed campaign output differs from the uninterrupted run:"
  cat "$TMP/diff.out" >&2
fi

echo "== SIGTERM flushes the checkpoint and exits 4"
# Retried with a fresh capture dir on the unlucky scheduling where the
# campaign finishes before the signal lands.
term_rc=-1
CAPC=""
for attempt in 1 2 3; do
  CAPC="$TMP/capC$attempt"
  # shellcheck disable=SC2086
  "$TMP/mmsim" $FLAGS -capture "$CAPC" run $IDS > "$TMP/termed.out" 2> "$TMP/termed.err" &
  PID=$!
  for _ in $(seq 1 400); do
    if grep -q 'wall time' "$TMP/termed.out" 2>/dev/null; then
      break
    fi
    sleep 0.05
  done
  kill -TERM "$PID" 2>/dev/null
  wait "$PID"
  term_rc=$?
  if [ "$term_rc" -eq 4 ]; then
    break
  fi
  echo "   (campaign finished before SIGTERM landed; retrying)"
done
if [ "$term_rc" -ne 4 ]; then
  fail "SIGTERM run exited $term_rc, want 4"
fi
if ! grep -q 'checkpoint flushed' "$TMP/termed.err"; then
  fail "SIGTERM run did not report flushing the checkpoint"
fi
if [ ! -s "$CAPC/campaign.ckpt" ]; then
  fail "no checkpoint written before SIGTERM"
fi

echo "== resume after SIGTERM is byte-identical"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -capture "$CAPC" -resume run $IDS > "$TMP/termresumed.out" || fail "resume after SIGTERM failed"
if ! grep -q 'resumed from checkpoint' "$TMP/termresumed.out"; then
  fail "resume after SIGTERM re-ran every experiment (no checkpoint hit)"
fi
if ! diff <(scrub < "$TMP/full.out") <(scrub < "$TMP/termresumed.out") > "$TMP/diff2.out"; then
  fail "resume after SIGTERM differs from the uninterrupted run:"
  cat "$TMP/diff2.out" >&2
fi

echo "== mismatched resume exits 2 with a diagnostic"
# Unlike flag errors these print the checkpoint diagnostic, not usage.
expect_mismatch() {
  "$TMP/mmsim" "$@" > /dev/null 2> "$TMP/mismatch.err"
  rc=$?
  if [ "$rc" -ne 2 ]; then
    fail "mmsim $* exited $rc, want 2"
  elif ! grep -q 'checkpoint does not match' "$TMP/mismatch.err"; then
    fail "mmsim $* printed no mismatch diagnostic:"
    cat "$TMP/mismatch.err" >&2
  fi
}
# Different seed: the recorded options fingerprint is foreign.
# shellcheck disable=SC2086
expect_mismatch -quick -seed 4 -parallel 1 -capture "$CAPC" -resume run $IDS
# Disjoint runner set: the checkpoint records experiments outside it.
expect_mismatch -quick -seed 3 -parallel 1 -capture "$CAPC" -resume run T1

echo "== malformed flags exit non-zero with usage"
expect_exit2() {
  "$TMP/mmsim" "$@" > /dev/null 2> "$TMP/err.out"
  rc=$?
  if [ "$rc" -ne 2 ]; then
    fail "mmsim $* exited $rc, want 2"
  elif ! grep -q 'usage:' "$TMP/err.out"; then
    fail "mmsim $* printed no usage"
  fi
}
expect_exit2 -resume run T1
expect_exit2 -workers -2 run T1
expect_exit2 -parallel -1 run T1
expect_exit2 -deadline -5s run T1

echo "== tracedump exit codes (clean=0, truncated=3, corrupt=1)"
"$TMP/tracedump" -ms 0.5 -o "$TMP/cap.vubiq" wigig > /dev/null || fail "capture failed"
"$TMP/tracedump" read "$TMP/cap.vubiq" > /dev/null
[ $? -eq 0 ] || fail "clean capture did not exit 0"
size=$(wc -c < "$TMP/cap.vubiq")
head -c "$((size - 9))" "$TMP/cap.vubiq" > "$TMP/torn.vubiq"
"$TMP/tracedump" read "$TMP/torn.vubiq" > /dev/null
[ $? -eq 3 ] || fail "torn capture did not exit 3"
printf '\377\377\377\377' | dd of="$TMP/cap.vubiq" bs=1 seek=40 conv=notrunc 2> /dev/null
"$TMP/tracedump" read "$TMP/cap.vubiq" > /dev/null 2>&1
[ $? -eq 1 ] || fail "corrupt capture did not exit 1"

if [ "$FAILURES" -gt 0 ]; then
  echo "kill-resume smoke: $FAILURES failure(s)" >&2
  exit 1
fi
echo "kill-resume smoke: all checks passed"
