#!/usr/bin/env bash
# Daemon smoke test: boot mmsimd, run a clean campaign job end to end;
# then SIGKILL a second daemon generation mid-job, restart it on the same
# data directory, and require the resumed job's report to be
# byte-identical to the clean run's. Also checks graceful SIGTERM drain.
#
# Usage: scripts/daemon_smoke.sh  (from the repo root)
set -u

TMP="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

echo "== build"
go build -o "$TMP/mmsimd" ./cmd/mmsimd || exit 1

# A campaign with enough heavy tail (X1, X2, F22 are ~1-3 s each even in
# quick mode) that the SIGKILL below reliably lands mid-job.
IDS="T1 F3 F24 F8 F9 F18 F21 X1 X2 F22"
DPID=""
ADDR=""

# start_daemon DATA LOG — boots mmsimd on a free port, parses the bound
# address from the startup line into ADDR, and the pid into DPID.
start_daemon() {
  "$TMP/mmsimd" serve -addr 127.0.0.1:0 -data "$1" -jobs 1 -parallel 1 > "$2" 2>&1 &
  DPID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^mmsimd: listening on \([^ ]*\) .*/\1/p' "$2" 2>/dev/null)
    if [ -n "$ADDR" ]; then
      return 0
    fi
    sleep 0.1
  done
  fail "daemon did not start; log:"
  cat "$2" >&2
  return 1
}

echo "== clean run through the daemon"
start_daemon "$TMP/dataA" "$TMP/d1.log" || exit 1
# shellcheck disable=SC2086
JOB=$("$TMP/mmsimd" submit -addr "$ADDR" -quick -seed 3 $IDS) || fail "submit failed"
"$TMP/mmsimd" wait -addr "$ADDR" -timeout 5m "$JOB" > /dev/null || fail "clean job did not complete"
"$TMP/mmsimd" report -addr "$ADDR" "$JOB" > "$TMP/clean.txt" || fail "clean report unavailable"
if [ ! -s "$TMP/clean.txt" ]; then
  fail "clean report is empty"
fi

echo "== graceful SIGTERM drain exits 0"
kill -TERM "$DPID"
wait "$DPID"
rc=$?
if [ "$rc" -ne 0 ]; then
  fail "drained daemon exited $rc, want 0"
fi
if ! grep -q 'mmsimd: drained' "$TMP/d1.log"; then
  fail "daemon did not report draining"
fi

echo "== SIGKILL mid-job"
# kill_mid_job DATA — boots a daemon, submits the campaign, and SIGKILLs
# the daemon after at least one experiment is durably checkpointed but
# before the job completes. Returns 1 (for a retry with a fresh dir) on
# the unlucky scheduling where the job finished before the kill landed.
kill_mid_job() {
  start_daemon "$1" "$TMP/dkill.log" || exit 1
  # shellcheck disable=SC2086
  JOB=$("$TMP/mmsimd" submit -addr "$ADDR" -quick -seed 3 $IDS) || { fail "submit failed"; exit 1; }
  # A job snapshot grows a "results" array only once an experiment has
  # been checkpointed (the campaign records before it reports), so this
  # poll guarantees the kill lands after at least one durable record.
  ckpt_seen=0
  for _ in $(seq 1 600); do
    if "$TMP/mmsimd" status -addr "$ADDR" "$JOB" 2>/dev/null | grep -q '"results"'; then
      ckpt_seen=1
      break
    fi
    sleep 0.1
  done
  if [ "$ckpt_seen" -ne 1 ]; then
    fail "no experiment checkpointed before the kill"
    exit 1
  fi
  kill -9 "$DPID" 2>/dev/null
  wait "$DPID" 2>/dev/null
  if [ ! -s "$1/jobs/$JOB/campaign.ckpt" ]; then
    fail "no checkpoint on disk after SIGKILL"
    exit 1
  fi
  grep -q '"state": "running"' "$1/jobs/$JOB/job.json"
}
killed=0
for attempt in 1 2 3; do
  DATA="$TMP/dataB$attempt"
  if kill_mid_job "$DATA"; then
    killed=1
    break
  fi
  echo "   (job finished before the kill landed; retrying)"
done
if [ "$killed" -ne 1 ]; then
  fail "could not catch the job mid-run in 3 attempts"
fi

echo "== restart resumes the job byte-identically"
start_daemon "$DATA" "$TMP/d3.log" || exit 1
"$TMP/mmsimd" wait -addr "$ADDR" -timeout 5m "$JOB" > /dev/null || fail "resumed job did not complete"
RESUMED=$("$TMP/mmsimd" status -addr "$ADDR" "$JOB" | sed -n 's/.*"resumed_experiments": \([0-9]*\).*/\1/p')
if [ "${RESUMED:-0}" -lt 1 ]; then
  fail "restarted daemon re-ran everything (resumed_experiments=${RESUMED:-0})"
fi
"$TMP/mmsimd" report -addr "$ADDR" "$JOB" > "$TMP/resumed.txt" || fail "resumed report unavailable"
if ! diff "$TMP/clean.txt" "$TMP/resumed.txt" > "$TMP/diff.out"; then
  fail "resumed job report is not byte-identical to the clean run:"
  cat "$TMP/diff.out" >&2
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "daemon smoke: $FAILURES failure(s)" >&2
  exit 1
fi
echo "daemon smoke: all checks passed"
