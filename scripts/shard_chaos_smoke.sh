#!/usr/bin/env bash
# Shard chaos smoke test: run the campaign across worker processes at
# several shard counts and require every merged report to be
# byte-identical to the single-process run (wall-clock annotations
# aside) — including a chaos run where a randomly chosen worker process
# is SIGKILLed mid-slice and its experiments must be retried on the
# survivors.
#
# Usage: scripts/shard_chaos_smoke.sh  (from the repo root)
set -u

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

echo "== build"
go build -o "$TMP/mmsim" ./cmd/mmsim || exit 1

# Fast experiments up front, heavy tail (X1, X2, F22 are ~1-3 s each in
# quick mode) so the chaos kill reliably lands while workers are busy.
IDS="T1 F3 F24 F8 F9 F18 F21 X1 X2 F22"
FLAGS="-quick -seed 3"

# Wall-clock annotations are the only legitimate difference between the
# single-process and sharded reports.
scrub() {
  grep -v 'wall time'
}

echo "== single-process reference run"
# shellcheck disable=SC2086
"$TMP/mmsim" $FLAGS -metrics "$TMP/ref.json" run $IDS > "$TMP/ref.out" || fail "reference campaign failed"

echo "== clean sharded runs are byte-identical (shards 1 2 4 8)"
for N in 1 2 4 8; do
  # shellcheck disable=SC2086
  "$TMP/mmsim" $FLAGS -shards "$N" -metrics "$TMP/m$N.json" run $IDS > "$TMP/s$N.out" \
    || fail "-shards $N campaign failed"
  if ! diff <(scrub < "$TMP/ref.out") <(scrub < "$TMP/s$N.out") > "$TMP/d$N.out"; then
    fail "-shards $N report differs from single-process run:"
    cat "$TMP/d$N.out" >&2
  fi
  if ! cmp -s "$TMP/ref.json" "$TMP/m$N.json"; then
    fail "-shards $N metrics differ from single-process run"
  fi
done

echo "== chaos run: SIGKILL a worker mid-slice, expect retry + identical output"
# Retried on the unlucky scheduling where the campaign finishes before a
# worker can be found and killed.
chaos_ok=0
for attempt in 1 2 3; do
  # shellcheck disable=SC2086
  "$TMP/mmsim" $FLAGS -shards 3 -metrics "$TMP/chaos.json" run $IDS \
    > "$TMP/chaos.out" 2> "$TMP/chaos.err" &
  PID=$!
  VICTIM=""
  for _ in $(seq 1 300); do
    if ! kill -0 "$PID" 2>/dev/null; then
      break # campaign already over
    fi
    # Pick an arbitrary live worker child of the coordinator.
    VICTIM="$(pgrep -P "$PID" | head -n 1)"
    if [ -n "$VICTIM" ]; then
      break
    fi
    sleep 0.02
  done
  if [ -z "$VICTIM" ]; then
    echo "   (campaign finished before a worker could be killed; retrying)"
    wait "$PID" 2>/dev/null
    continue
  fi
  # Let the worker pick up a slice before the kill so the death is
  # observed mid-flight, not between assignments.
  sleep 0.3
  kill -9 "$VICTIM" 2>/dev/null
  wait "$PID"
  rc=$?
  if ! grep -q 'retrying' "$TMP/chaos.err"; then
    # The worker finished its whole queue before the kill landed (or the
    # campaign was already merging): no death was observed, try again.
    echo "   (worker death was not observed mid-slice; retrying)"
    continue
  fi
  if [ "$rc" -ne 0 ]; then
    fail "chaos campaign exited $rc after worker kill (want 0):"
    cat "$TMP/chaos.err" >&2
    break
  fi
  chaos_ok=1
  break
done
if [ "$chaos_ok" -eq 1 ]; then
  if ! grep -q 'died' "$TMP/chaos.err"; then
    fail "chaos run logged no worker death:"
    cat "$TMP/chaos.err" >&2
  fi
  if ! diff <(scrub < "$TMP/ref.out") <(scrub < "$TMP/chaos.out") > "$TMP/dchaos.out"; then
    fail "chaos report differs from single-process run:"
    cat "$TMP/dchaos.out" >&2
  fi
  if ! cmp -s "$TMP/ref.json" "$TMP/chaos.json"; then
    fail "chaos metrics differ from single-process run"
  fi
elif [ "$FAILURES" -eq 0 ]; then
  fail "could not observe a worker death in 3 chaos attempts"
fi

echo "== malformed -shards exits 2 with usage"
"$TMP/mmsim" -shards -1 run T1 > /dev/null 2> "$TMP/err.out"
rc=$?
if [ "$rc" -ne 2 ]; then
  fail "mmsim -shards -1 exited $rc, want 2"
elif ! grep -q 'usage:' "$TMP/err.out"; then
  fail "mmsim -shards -1 printed no usage"
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "shard chaos smoke: $FAILURES failure(s)" >&2
  exit 1
fi
echo "shard chaos smoke: all checks passed"
