#!/bin/sh
# bench_snapshot.sh — capture a benchmark snapshot of the measurement
# campaign into BENCH_campaign.json at the repository root.
#
# For every per-experiment benchmark it records ns/op, B/op, allocs/op
# and the pass metric (1 = the reproduced artifact matched the paper's
# claim on every check), plus the hot-path and batch-kernel
# microbenchmarks. It then times the quick campaign end to end with 1
# sweep worker and with one worker per CPU, so the speedup of the
# intra-experiment sweep engine is part of the snapshot.
#
# The snapshot itself is written through `benchgate -update`, which
# preserves the hand-tuned per-benchmark tolerance overrides
# (allocs_rel_tol / bytes_rel_tol / ns_rel_tol) committed in the
# baseline — regenerating the file never silently widens or drops a
# gate.
#
# Usage: scripts/bench_snapshot.sh [benchtime]
#   benchtime defaults to 1x (one campaign replay per benchmark).
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1x}"
out=BENCH_campaign.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (-benchtime $benchtime)..." >&2
go test -run '^$' -bench '^Benchmark(Table1|Fig|Aggregation|Ablation|Blockage|Dense|Campaign)' \
    -benchmem -benchtime "$benchtime" . | tee "$raw" >&2

# The ManyWalls tracer-scaling family (indexed vs brute-force across
# floor sizes) is millisecond scale and carries ns_rel_tol gates, so it
# always runs at a fixed iteration count for a stable ns/op regardless
# of the campaign benchtime.
echo "running tracer scaling benchmarks (-benchtime 20x)..." >&2
go test -run '^$' -bench '^BenchmarkManyWalls' -benchmem -benchtime 20x . | tee -a "$raw" >&2

# The hot-path and batch-kernel microbenchmarks are nanosecond-to-
# microsecond scale, so they get a fixed iteration count instead of the
# campaign benchtime: one iteration would make ns/op meaningless while
# allocs/op stays exact either way.
echo "running hot-path microbenchmarks (-benchtime 1000x)..." >&2
go test -run '^$' -bench '^Benchmark' -benchmem -benchtime 1000x \
    ./internal/sim/ ./internal/rf/ ./internal/antenna/ | tee -a "$raw" >&2

time_campaign() {
    # Prints the wall-clock seconds of a quick single-threaded campaign
    # run at the given sweep-worker count.
    workers="$1"
    start=$(date +%s.%N)
    go run ./cmd/mmsim -quick -parallel 1 -workers "$workers" run all >/dev/null
    end=$(date +%s.%N)
    echo "$start $end" | awk '{printf "%.3f", $2 - $1}'
}

echo "timing quick campaign with 1 sweep worker..." >&2
t1=$(time_campaign 1)
ncpu=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)
echo "timing quick campaign with $ncpu sweep worker(s)..." >&2
tn=$(time_campaign "$ncpu")

go run ./cmd/benchgate -baseline "$out" -bench "$raw" -update \
    -campaign-t1 "$t1" -campaign-tn "$tn" -campaign-ncpu "$ncpu" >&2

echo "wrote $out" >&2
