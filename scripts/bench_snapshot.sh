#!/bin/sh
# bench_snapshot.sh — capture a benchmark snapshot of the measurement
# campaign into BENCH_campaign.json at the repository root.
#
# For every per-experiment benchmark it records ns/op, B/op, allocs/op
# and the pass metric (1 = the reproduced artifact matched the paper's
# claim on every check). It then times the quick campaign end to end
# with 1 sweep worker and with one worker per CPU, so the speedup of the
# intra-experiment sweep engine is part of the snapshot.
#
# Usage: scripts/bench_snapshot.sh [benchtime]
#   benchtime defaults to 1x (one campaign replay per benchmark).
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1x}"
out=BENCH_campaign.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (-benchtime $benchtime)..." >&2
go test -run '^$' -bench '^Benchmark' -benchmem -benchtime "$benchtime" . | tee "$raw" >&2

# The hot-path microbenchmarks are nanosecond-scale, so they get a fixed
# iteration count instead of the campaign benchtime: one iteration would
# make ns/op meaningless while allocs/op stays exact either way.
echo "running hot-path microbenchmarks (-benchtime 1000x)..." >&2
go test -run '^$' -bench '^Benchmark' -benchmem -benchtime 1000x ./internal/sim/ | tee -a "$raw" >&2

time_campaign() {
    # Prints the wall-clock seconds of a quick single-threaded campaign
    # run at the given sweep-worker count.
    workers="$1"
    start=$(date +%s.%N)
    go run ./cmd/mmsim -quick -parallel 1 -workers "$workers" run all >/dev/null
    end=$(date +%s.%N)
    echo "$start $end" | awk '{printf "%.3f", $2 - $1}'
}

echo "timing quick campaign with 1 sweep worker..." >&2
t1=$(time_campaign 1)
ncpu=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)
echo "timing quick campaign with $ncpu sweep worker(s)..." >&2
tn=$(time_campaign "$ncpu")

awk -v t1="$t1" -v tn="$tn" -v ncpu="$ncpu" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; pass = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "pass")      pass = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (pass != "")   printf ", \"pass\": %s", pass
    printf "}"
}
END {
    printf "\n  ],\n"
    printf "  \"ncpu\": %s,\n", ncpu
    printf "  \"campaign_quick_seconds\": {\"workers_1\": %s, \"workers_ncpu\": %s},\n", t1, tn
    printf "  \"speedup\": %.2f", t1 / tn
    if (ncpu + 0 == 1)
        printf ",\n  \"note\": \"single-CPU host: the sweep pool cannot show a speedup here; run on a multi-core machine to measure it\""
    printf "\n}\n"
}
BEGIN {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", strftime("%Y-%m-%d")
    printf "  \"benchmarks\": [\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
