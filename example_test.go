package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// ExampleNewScenario brings up a D5000-style link and reports its
// trained state — the smallest useful program against the public API.
func ExampleNewScenario() {
	sc := repro.NewScenario(repro.OpenSpace(), 42)
	link := sc.AddWiGigLink(
		repro.WiGigConfig{Name: "dock", Pos: repro.XY(0, 0)},
		repro.WiGigConfig{Name: "laptop", Pos: repro.XY(2, 0)},
	)
	if !link.WaitAssociated(sc.Sched, time.Second) {
		fmt.Println("no association")
		return
	}
	fmt.Printf("associated at %s\n", link.Dock.CurrentMCS())
	// Output:
	// associated at MCS11 (π/2-16QAM 5/8, 3850 Mbps)
}

// ExampleLookupExperiment runs one registered paper artifact and prints
// whether the reproduction checks passed.
func ExampleLookupExperiment() {
	r, ok := repro.LookupExperiment("A4")
	if !ok {
		fmt.Println("missing")
		return
	}
	res := r.Run(repro.QuickExperimentOptions())
	fmt.Printf("%s pass=%v\n", res.ID, res.Pass())
	// Output:
	// A4 pass=true
}
